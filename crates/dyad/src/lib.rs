//! # dyad — the Dynamic and Asynchronous Data Streamliner
//!
//! A reimplementation of DYAD's runtime behaviour (flux-framework/dyad)
//! against the simulated substrates, following §III-A of the paper:
//!
//! * **Producers** write frames to *node-local storage* (the node's
//!   [`localfs::LocalFs`] managed directory) and publish
//!   `(owner, size)` metadata to the Flux-like [`kvs`] — the "global
//!   metadata management" of Figure 2.
//! * **Consumers** synchronize with *multi-protocol automatic
//!   synchronization*: the first access to a not-yet-produced frame
//!   parks in a KVS watch (the expensive, loosely coupled protocol);
//!   once the pipeline is warm, data is already published and the sync
//!   degrades to a cheap flock-style probe plus an immediate KVS
//!   answer.
//! * Remote data moves with **RDMA-style transfer** over the UCX-like
//!   [`transport`] (`dyad_get_data`), is staged into the consumer's
//!   node-local storage (`dyad_cons_store`), and is finally read by the
//!   application (`read_single_buf`) — the exact call tree Figure 9
//!   analyzes.
//!
//! Every phase is wrapped in [`instrument`] regions with the paper's
//! region names, so Thicket queries can split data-movement time from
//! synchronization (idle) time the same way the authors did.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use cluster::NodeId;
use faults::RetryPolicy;
use instrument::Recorder;
use kvs::KvsHandle;
use localfs::{FsResult, LocalFs, LockKind};
use pfs::PfsClient;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simcore::resource::FifoResource;
use simcore::{Ctx, SimDuration};
use staging::StagingManager;
use transport::{AmId, Endpoint, LocalBoxFuture, Payload, Transport, TransportError};

pub use staging::{FrameLocation, FrameMeta};

/// Errors surfaced by the fallible produce/consume paths under a fault
/// plan. Without faults these paths cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DyadError {
    /// Every copy of the frame is gone: the owner crashed before the
    /// frame could spill, or the spill copy itself was dropped.
    FrameLost {
        /// Managed path of the lost frame.
        path: String,
    },
    /// A transport-level failure survived the retry budget.
    Transport(TransportError),
    /// Local storage kept failing (NVMe device-error window outlasted
    /// the retry budget).
    Storage {
        /// Managed path of the frame being written.
        path: String,
    },
    /// The frame could not be resolved to a live copy within the
    /// consume retry budget.
    Unresolvable {
        /// Managed path of the frame.
        path: String,
        /// Fetch attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for DyadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DyadError::FrameLost { path } => write!(f, "frame {path} lost (no surviving copy)"),
            DyadError::Transport(e) => write!(f, "transport failure: {e}"),
            DyadError::Storage { path } => write!(f, "local storage failure writing {path}"),
            DyadError::Unresolvable { path, attempts } => {
                write!(f, "frame {path} unresolvable after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DyadError {}

impl From<TransportError> for DyadError {
    fn from(e: TransportError) -> Self {
        DyadError::Transport(e)
    }
}

/// Retry policy shaping DYAD's own recovery loops (consumer re-resolve,
/// producer write retry). Wider than the transport policy: node outages
/// last milliseconds-to-seconds, so the cap and budget stretch further.
pub fn dyad_retry_policy() -> RetryPolicy {
    RetryPolicy {
        base: SimDuration::from_millis(1),
        cap: SimDuration::from_millis(500),
        max_attempts: 12,
        jitter_frac: 0.25,
        attempt_timeout: SimDuration::from_millis(100),
    }
}

/// The AM id of the per-node DYAD data service.
pub const DYAD_AM: AmId = AmId(0x4459);

/// DYAD tuning parameters.
#[derive(Debug, Clone)]
pub struct DyadSpec {
    /// Root of the DYAD-managed directory on every node's local fs.
    pub managed_dir: String,
    /// CPU overhead of global-namespace management per produce (the
    /// metadata bookkeeping the paper blames for DYAD's 1.4× slower
    /// production).
    pub produce_overhead: SimDuration,
    /// Service threads in the per-node data service.
    pub service_threads: u64,
    /// Request-processing time in the data service (excluding I/O).
    pub service_time: SimDuration,
    /// Enable the warm flock-style fast path (disable to force KVS
    /// waits on every access — the synchronization ablation).
    pub warm_sync: bool,
    /// Use client-side polling for the cold synchronization instead of
    /// a server-side KVS watch (the naive protocol DYAD's automatic
    /// synchronization replaces; ablation knob).
    pub cold_sync_poll: bool,
}

impl Default for DyadSpec {
    fn default() -> Self {
        DyadSpec {
            managed_dir: "/dyad".to_string(),
            produce_overhead: SimDuration::from_micros(60),
            service_threads: 4,
            service_time: SimDuration::from_micros(10),
            warm_sync: true,
            cold_sync_poll: false,
        }
    }
}

/// Operation counters for one node's DYAD service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DyadStats {
    /// Frames produced through this service.
    pub produces: u64,
    /// Frames consumed through this service.
    pub consumes: u64,
    /// Consumptions that parked in a KVS watch (cold syncs).
    pub cold_syncs: u64,
    /// Consumptions satisfied by the warm fast path.
    pub warm_syncs: u64,
    /// Consumptions that found the data already node-local.
    pub local_hits: u64,
    /// Remote fetches served *by* this node (owner side).
    pub fetches_served: u64,
    /// Bytes produced.
    pub bytes_produced: u64,
    /// Bytes consumed.
    pub bytes_consumed: u64,
}

struct ServiceInner {
    stats: DyadStats,
    dirs_made: std::collections::HashSet<String>,
}

/// The per-node DYAD service: owns the node's managed directory, serves
/// remote fetch requests, and provides the produce/consume API.
pub struct DyadService {
    ctx: Ctx,
    node: NodeId,
    fs: LocalFs,
    kvs: KvsHandle,
    ep: Endpoint,
    spec: Rc<DyadSpec>,
    staging: Option<Rc<StagingManager>>,
    inner: Rc<RefCell<ServiceInner>>,
}

impl DyadService {
    /// Start DYAD on `node` with unbounded staging (the paper's
    /// configuration: frames stay on NVMe forever).
    pub fn start(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        fs: LocalFs,
        kvs: impl Into<KvsHandle>,
        spec: DyadSpec,
    ) -> Rc<DyadService> {
        Self::start_staged(ctx, tp, node, fs, kvs, spec, None)
    }

    /// Start DYAD on `node` under a [`StagingManager`]: produces pass
    /// admission control (backpressure) and register in the staged-frame
    /// lifecycle; consumes publish acknowledgements and fall back to the
    /// PFS copy when the evictor spilled a frame. Registers the
    /// data-service handler that answers `dyad_get_data` requests from
    /// consumers on other nodes.
    pub fn start_staged(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        fs: LocalFs,
        kvs: impl Into<KvsHandle>,
        spec: DyadSpec,
        staging: Option<Rc<StagingManager>>,
    ) -> Rc<DyadService> {
        let spec = Rc::new(spec);
        let inner = Rc::new(RefCell::new(ServiceInner {
            stats: DyadStats::default(),
            dirs_made: std::collections::HashSet::new(),
        }));
        let service = FifoResource::new(ctx, spec.service_threads);
        let svc = Rc::new(DyadService {
            ctx: ctx.clone(),
            node,
            fs: fs.clone(),
            kvs: kvs.into(),
            ep: tp.endpoint(node),
            spec: spec.clone(),
            staging,
            inner: inner.clone(),
        });
        let hfs = fs;
        let hspec = spec;
        let hinner = inner;
        tp.register_bulk(
            node,
            DYAD_AM,
            Rc::new(move |hdr: Bytes, _payload: Payload| {
                let fs = hfs.clone();
                let spec = hspec.clone();
                let inner = hinner.clone();
                let service = service.clone();
                Box::pin(async move {
                    service.request(spec.service_time).await;
                    let path = String::from_utf8(hdr.to_vec()).expect("utf-8 path");
                    let data = match fs.open(&path).await {
                        Ok(fd) => {
                            let segs = fs.read_segments(fd).await.unwrap_or_default();
                            let _ = fs.close(fd).await;
                            segs
                        }
                        Err(_) => Vec::new(),
                    };
                    inner.borrow_mut().stats.fetches_served += 1;
                    (Bytes::new(), data)
                }) as LocalBoxFuture<(Bytes, Payload)>
            }),
        );
        svc
    }

    /// The node this service runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Operation counters.
    pub fn stats(&self) -> DyadStats {
        self.inner.borrow().stats
    }

    /// The managed path for a logical frame name.
    pub fn managed_path(&self, name: &str) -> String {
        format!("{}/{}", self.spec.managed_dir, name.trim_start_matches('/'))
    }

    async fn ensure_dirs(&self, path: &str) {
        let Some(dir) = path.rsplit_once('/').map(|(d, _)| d.to_string()) else {
            return;
        };
        let need = !self.inner.borrow().dirs_made.contains(&dir);
        if need {
            let _ = self.fs.mkdir_p(&dir).await;
            self.inner.borrow_mut().dirs_made.insert(dir);
        }
    }

    /// Write a frame to the managed directory with atomic tmp+rename
    /// publication. On failure (device-error window) the tmp file is
    /// removed so a retry starts clean.
    async fn write_frame(&self, path: &str, frame: Payload) -> FsResult<()> {
        self.ensure_dirs(path).await;
        let tmp = format!("{path}.tmp");
        let res: FsResult<()> = async {
            let fd = self.fs.create(&tmp).await?;
            for seg in frame {
                self.fs.write_bytes(fd, seg).await?;
            }
            self.fs.close(fd).await?;
            self.fs.rename(&tmp, path).await?;
            Ok(())
        }
        .await;
        if res.is_err() {
            let _ = self.fs.unlink(&tmp).await;
        }
        res
    }

    /// Produce a frame: write to node-local storage, then publish
    /// metadata to the KVS.
    ///
    /// Call tree: `dyad_produce` → { `dyad_prod_write`, `dyad_commit` }.
    pub async fn produce(&self, rec: &Recorder, name: &str, frame: Payload) {
        let path = self.managed_path(name);
        let size = transport::payload_len(&frame);
        let g = rec.region("dyad_produce");
        // Admission control: above the staging high watermark the
        // producer blocks here until the evictor frees space. The stall
        // is its own region so `report` can split it out of production
        // time as idle rather than movement.
        if let Some(st) = &self.staging {
            if st.would_block(size) {
                let b = rec.region("staging_backpressure");
                st.admit(size).await;
                b.end();
            }
        }
        {
            // Write to a temp name and rename: the frame becomes visible
            // atomically, so a same-node consumer can never observe a
            // partially written file.
            let w = rec.region("dyad_prod_write");
            self.write_frame(&path, frame).await.expect("local write");
            w.end();
        }
        if let Some(st) = &self.staging {
            st.frame_written(&path, size);
        }
        {
            let c = rec.region("dyad_commit");
            // Global-namespace bookkeeping (hashing, path registration).
            self.ctx.sleep(self.spec.produce_overhead).await;
            let meta = FrameMeta {
                owner: self.node,
                size,
                location: FrameLocation::Nvme,
            };
            self.kvs.commit(&path, meta.encode()).await;
            c.end();
        }
        if let Some(st) = &self.staging {
            st.frame_published(&path);
        }
        g.end();
        let mut inner = self.inner.borrow_mut();
        inner.stats.produces += 1;
        inner.stats.bytes_produced += size;
    }

    /// Fallible [`DyadService::produce`] for fault runs: local writes
    /// retry through NVMe device-error windows with backoff, and the
    /// metadata commit retries through broker outages. Fails typed once
    /// the retry budget is exhausted.
    pub async fn try_produce(
        &self,
        rec: &Recorder,
        name: &str,
        frame: Payload,
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> Result<(), DyadError> {
        let path = self.managed_path(name);
        let size = transport::payload_len(&frame);
        let g = rec.region("dyad_produce");
        if let Some(st) = &self.staging {
            if st.would_block(size) {
                let b = rec.region("staging_backpressure");
                st.admit(size).await;
                b.end();
            }
        }
        let mut attempts = 0;
        loop {
            attempts += 1;
            let w = rec.region("dyad_prod_write");
            let res = self.write_frame(&path, frame.clone()).await;
            w.end();
            match res {
                Ok(()) => break,
                Err(_) if attempts < policy.max_attempts => {
                    rec.annotate("produce_retries", 1.0);
                    let pause = policy.backoff(attempts - 1, rng);
                    self.ctx.sleep(pause).await;
                }
                Err(_) => {
                    // The frame can never appear: publish a Lost
                    // tombstone (best effort) so consumers surface a
                    // typed FrameLost instead of parking forever on a
                    // key that will never be committed.
                    let meta = FrameMeta {
                        owner: self.node,
                        size,
                        location: FrameLocation::Lost,
                    };
                    let _ = self.kvs.try_commit(&path, meta.encode()).await;
                    g.end();
                    return Err(DyadError::Storage { path });
                }
            }
        }
        if let Some(st) = &self.staging {
            st.frame_written(&path, size);
        }
        let commit_res = {
            let c = rec.region("dyad_commit");
            self.ctx.sleep(self.spec.produce_overhead).await;
            let meta = FrameMeta {
                owner: self.node,
                size,
                location: FrameLocation::Nvme,
            };
            let r = self.kvs.try_commit(&path, meta.encode()).await;
            c.end();
            r
        };
        commit_res?;
        if let Some(st) = &self.staging {
            st.frame_published(&path);
        }
        g.end();
        let mut inner = self.inner.borrow_mut();
        inner.stats.produces += 1;
        inner.stats.bytes_produced += size;
        Ok(())
    }

    /// Open a consumer session (tracks warm/cold synchronization state,
    /// one per consumer process). The session id defaults to the node
    /// name; sessions whose acks feed staging retention should use
    /// [`DyadService::consumer_with_id`] with the id the workflow
    /// registered on the producer's staging manager.
    pub fn consumer(self: &Rc<Self>) -> DyadConsumer {
        self.consumer_with_id(&format!("n{}", self.node.0))
    }

    /// Open a consumer session with an explicit consumption-ack id.
    pub fn consumer_with_id(self: &Rc<Self>, id: &str) -> DyadConsumer {
        // FNV-1a over the id gives each session its own deterministic
        // backoff-jitter stream (only drawn from under a fault plan).
        let mut h: u64 = 0xcbf29ce484222325;
        for b in id.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x100000001b3);
        }
        let rng = StdRng::seed_from_u64(
            self.ctx
                .rng(0x4459_0000 ^ u64::from(self.node.0))
                .random::<u64>()
                ^ h,
        );
        DyadConsumer {
            svc: self.clone(),
            id: id.to_string(),
            warmed: false,
            rng,
        }
    }
}

/// Consumer-side session state for multi-protocol synchronization.
pub struct DyadConsumer {
    svc: Rc<DyadService>,
    id: String,
    warmed: bool,
    rng: StdRng,
}

impl DyadConsumer {
    /// Consume a frame by logical name, returning its payload.
    ///
    /// Call tree: `dyad_consume` → { `dyad_sync_flock` or `dyad_fetch`,
    /// `dyad_get_data`, `dyad_cons_store`, `read_single_buf` }, matching
    /// Figure 9.
    pub async fn consume(&mut self, rec: &Recorder, name: &str) -> Payload {
        let svc = self.svc.clone();
        let path = svc.managed_path(name);
        let g = rec.region("dyad_consume");

        // --- Synchronization ------------------------------------------
        // Local presence first (single-node deployments): a flock probe
        // suffices once the producer shares our filesystem.
        let mut data: Option<Payload> = None;
        if svc.fs.exists(&path) {
            let f = rec.region("dyad_sync_flock");
            svc.fs
                .flock(&path, LockKind::Shared)
                .await
                .expect("flock on existing file");
            svc.fs
                .funlock(&path, LockKind::Shared)
                .await
                .expect("funlock");
            f.end();
            // Node-local: direct read. Under staging, the evictor may
            // retire or spill the frame between the probe and the read;
            // a miss falls through to metadata resolution below.
            let r = rec.region("read_single_buf");
            data = try_read_local(&svc.fs, &path).await;
            r.end();
            if data.is_some() {
                svc.inner.borrow_mut().stats.local_hits += 1;
                self.warmed = true;
            }
        }

        if data.is_none() {
            // Remote (or evicted) data: resolve the owner through the
            // KVS.
            let f = rec.region("dyad_fetch");
            let mut meta;
            if self.warmed && svc.spec.warm_sync {
                // Warm path: data is normally already published — one
                // cheap, non-blocking lookup.
                match svc.kvs.lookup(&path).await {
                    Some(v) => {
                        svc.inner.borrow_mut().stats.warm_syncs += 1;
                        meta = FrameMeta::decode(v.value);
                    }
                    None => {
                        // Producer fell behind: fall back to the
                        // loosely coupled blocking watch.
                        rec.annotate("cold_fallbacks", 1.0);
                        svc.inner.borrow_mut().stats.cold_syncs += 1;
                        let v = cold_wait(&svc, rec, &path).await;
                        meta = FrameMeta::decode(v.value);
                    }
                }
            } else {
                // Cold path (first access): park in a KVS watch (or
                // poll, if the ablation knob says so).
                svc.inner.borrow_mut().stats.cold_syncs += 1;
                let v = cold_wait(&svc, rec, &path).await;
                meta = FrameMeta::decode(v.value);
            }
            f.end();
            self.warmed = true;

            // --- Data movement ----------------------------------------
            // The staging evictor can move a frame between our metadata
            // read and the data fetch (NVMe → PFS on spill). The spill
            // republishes metadata *before* unlinking the NVMe copy, so
            // one re-lookup always observes the new location; the bound
            // is a defensive backstop.
            let mut attempts = 0;
            let fetched = loop {
                attempts += 1;
                assert!(
                    attempts <= 8,
                    "frame {path} unresolvable (evicted mid-consume?)"
                );
                match meta.location {
                    FrameLocation::Lost => {
                        // Only fault runs mint Lost tombstones, and they
                        // consume through the fallible path.
                        panic!("frame {path} lost to a node crash (use try_consume under faults)");
                    }
                    FrameLocation::Pfs => {
                        // Spilled: fetch the PFS copy directly.
                        let pfs = svc
                            .staging
                            .as_ref()
                            .and_then(|st| st.pfs_client())
                            .expect("spilled frame but no PFS client configured");
                        let r = rec.region("dyad_pfs_fallback");
                        let got = read_pfs(pfs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            if let Some(st) = &svc.staging {
                                st.note_pfs_fallback();
                            }
                            break got;
                        }
                    }
                    FrameLocation::Nvme if meta.owner == svc.node => {
                        // Published by a producer on our own node.
                        let r = rec.region("read_single_buf");
                        let got = try_read_local(&svc.fs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            break got;
                        }
                    }
                    FrameLocation::Nvme => {
                        // RDMA fetch from the owner's node-local
                        // storage. An empty payload means the owner no
                        // longer holds the file (spilled underneath us).
                        let r = rec.region("dyad_get_data");
                        let (_, got) = svc
                            .ep
                            .bulk_rpc(
                                meta.owner,
                                DYAD_AM,
                                Bytes::copy_from_slice(path.as_bytes()),
                                Vec::new(),
                            )
                            .await;
                        r.end();
                        if transport::payload_len(&got) > 0 {
                            // Stage into our node-local cache, with the
                            // same atomic rename publication (other
                            // consumer sessions on this node must never
                            // see a partial cache file).
                            let s = rec.region("dyad_cons_store");
                            svc.ensure_dirs(&path).await;
                            let tmp = format!("{path}.tmp-{}", svc.node.0);
                            let fd = svc.fs.create(&tmp).await.expect("managed dir");
                            let size = transport::payload_len(&got);
                            for seg in got {
                                svc.fs.write_bytes(fd, seg).await.expect("store");
                            }
                            svc.fs.close(fd).await.expect("close");
                            svc.fs.rename(&tmp, &path).await.expect("cache rename");
                            if let Some(st) = &svc.staging {
                                st.cache_inserted(&path, size);
                            }
                            s.end();
                            // Application read from the warm local cache.
                            let r = rec.region("read_single_buf");
                            let got = try_read_local(&svc.fs, &path).await;
                            r.end();
                            if let Some(got) = got {
                                break got;
                            }
                        }
                    }
                }
                // Re-read the metadata and try again at its new home.
                let v = svc
                    .kvs
                    .lookup(&path)
                    .await
                    .unwrap_or_else(|| panic!("frame {path} retired before consume"));
                meta = FrameMeta::decode(v.value);
            };
            data = Some(fetched);
        }
        let data = data.expect("consume resolved a payload");
        g.end();

        // Publish the consumption ack asynchronously: retention cares,
        // the application does not, so the commit must not add to the
        // consume latency.
        if let Some(st) = &svc.staging {
            let st = st.clone();
            let p = path.clone();
            let id = self.id.clone();
            svc.ctx.spawn(async move {
                st.publish_ack(&p, &id).await;
            });
        }

        let size = transport::payload_len(&data);
        let mut inner = svc.inner.borrow_mut();
        inner.stats.consumes += 1;
        inner.stats.bytes_consumed += size;
        data
    }

    /// Fallible [`DyadConsumer::consume`] for fault runs. Differences
    /// from the infallible path:
    ///
    /// * metadata ops ride the retrying KVS client (broker outages are
    ///   absorbed, then surface as [`DyadError::Transport`]);
    /// * the RDMA fetch retries with backoff; when the owner node is
    ///   down the consumer falls back to the frame's PFS spill copy
    ///   (re-fetching through the spill path) instead of waiting for
    ///   the restart;
    /// * a [`FrameLocation::Lost`] tombstone (owner crashed before the
    ///   frame could spill) surfaces as [`DyadError::FrameLost`] instead
    ///   of blocking forever;
    /// * the resolve loop is bounded by the policy's attempt budget and
    ///   fails typed ([`DyadError::Unresolvable`]) instead of panicking.
    pub async fn try_consume(&mut self, rec: &Recorder, name: &str) -> Result<Payload, DyadError> {
        let svc = self.svc.clone();
        let path = svc.managed_path(name);
        let policy = dyad_retry_policy();
        let g = rec.region("dyad_consume");

        // --- Synchronization ------------------------------------------
        let mut data: Option<Payload> = None;
        if svc.fs.exists(&path) {
            let f = rec.region("dyad_sync_flock");
            let locked = svc.fs.flock(&path, LockKind::Shared).await.is_ok();
            if locked {
                let _ = svc.fs.funlock(&path, LockKind::Shared).await;
            }
            f.end();
            if locked {
                let r = rec.region("read_single_buf");
                data = try_read_local(&svc.fs, &path).await;
                r.end();
                if data.is_some() {
                    svc.inner.borrow_mut().stats.local_hits += 1;
                    self.warmed = true;
                }
            }
        }

        if data.is_none() {
            let meta_res: Result<FrameMeta, DyadError> = {
                let f = rec.region("dyad_fetch");
                let r = if self.warmed && svc.spec.warm_sync {
                    match svc.kvs.try_lookup(&path).await {
                        Ok(Some(v)) => {
                            svc.inner.borrow_mut().stats.warm_syncs += 1;
                            Ok(FrameMeta::decode(v.value))
                        }
                        Ok(None) => {
                            rec.annotate("cold_fallbacks", 1.0);
                            svc.inner.borrow_mut().stats.cold_syncs += 1;
                            try_cold_wait(&svc, rec, &path)
                                .await
                                .map(|v| FrameMeta::decode(v.value))
                                .map_err(DyadError::from)
                        }
                        Err(e) => Err(e.into()),
                    }
                } else {
                    svc.inner.borrow_mut().stats.cold_syncs += 1;
                    try_cold_wait(&svc, rec, &path)
                        .await
                        .map(|v| FrameMeta::decode(v.value))
                        .map_err(DyadError::from)
                };
                f.end();
                r
            };
            let mut meta = meta_res?;
            self.warmed = true;

            // --- Data movement with recovery --------------------------
            let mut attempts = 0;
            let fetched = loop {
                attempts += 1;
                if attempts > policy.max_attempts {
                    return Err(DyadError::Unresolvable {
                        path,
                        attempts: attempts - 1,
                    });
                }
                match meta.location {
                    FrameLocation::Lost => {
                        return Err(DyadError::FrameLost { path });
                    }
                    FrameLocation::Pfs => {
                        if let Some(pfs) = svc.staging.as_ref().and_then(|st| st.pfs_client()) {
                            let r = rec.region("dyad_pfs_fallback");
                            let got = read_pfs(pfs, &path).await;
                            r.end();
                            if let Some(got) = got {
                                if let Some(st) = &svc.staging {
                                    st.note_pfs_fallback();
                                }
                                break got;
                            }
                            // Spill copy gone: the owner (or its
                            // restart hook) will tombstone or
                            // re-publish; re-resolve below.
                        }
                    }
                    FrameLocation::Nvme if meta.owner == svc.node => {
                        let r = rec.region("read_single_buf");
                        let got = try_read_local(&svc.fs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            break got;
                        }
                    }
                    FrameLocation::Nvme => {
                        let r = rec.region("dyad_get_data");
                        let fetch = svc
                            .ep
                            .bulk_rpc_retrying(
                                meta.owner,
                                DYAD_AM,
                                Bytes::copy_from_slice(path.as_bytes()),
                                Vec::new(),
                                &policy,
                                &mut self.rng,
                            )
                            .await;
                        r.end();
                        match fetch {
                            Ok((_, got)) if transport::payload_len(&got) > 0 => {
                                let stored = self.store_cache(rec, &path, got).await;
                                if let Some(got) = stored {
                                    break got;
                                }
                            }
                            Ok(_) => {
                                // Owner answered but no longer holds the
                                // file (spilled or lost underneath us):
                                // re-resolve through the KVS.
                            }
                            Err(_) => {
                                // Owner unreachable (crashed mid-window):
                                // try the PFS spill copy before waiting
                                // out the restart.
                                rec.annotate("dead_owner_fallbacks", 1.0);
                                if let Some(pfs) =
                                    svc.staging.as_ref().and_then(|st| st.pfs_client())
                                {
                                    let r = rec.region("dyad_pfs_fallback");
                                    let got = read_pfs(pfs, &path).await;
                                    r.end();
                                    if let Some(got) = got {
                                        if let Some(st) = &svc.staging {
                                            st.note_pfs_fallback();
                                        }
                                        break got;
                                    }
                                }
                            }
                        }
                    }
                }
                // Back off, then re-read the metadata and retry at the
                // frame's (possibly new) home.
                let pause = policy.backoff(attempts - 1, &mut self.rng);
                svc.ctx.sleep(pause).await;
                match svc.kvs.try_lookup(&path).await {
                    Ok(Some(v)) => meta = FrameMeta::decode(v.value),
                    // Metadata gone while we hold an unconsumed
                    // reference: the frame is unrecoverable.
                    Ok(None) => return Err(DyadError::FrameLost { path }),
                    Err(e) => return Err(e.into()),
                }
            };
            data = Some(fetched);
        }
        let data = data.expect("consume resolved a payload");
        g.end();

        if let Some(st) = &svc.staging {
            let st = st.clone();
            let p = path.clone();
            let id = self.id.clone();
            svc.ctx.spawn(async move {
                let _ = st.try_publish_ack(&p, &id).await;
            });
        }

        let size = transport::payload_len(&data);
        let mut inner = svc.inner.borrow_mut();
        inner.stats.consumes += 1;
        inner.stats.bytes_consumed += size;
        Ok(data)
    }

    /// Stage a fetched remote frame into the local cache and read it
    /// back. `None` when the cache write failed (device-error window) —
    /// the caller re-resolves; meanwhile serve nothing rather than a
    /// partial frame.
    async fn store_cache(&self, rec: &Recorder, path: &str, got: Payload) -> Option<Payload> {
        let svc = &self.svc;
        let s = rec.region("dyad_cons_store");
        svc.ensure_dirs(path).await;
        let tmp = format!("{path}.tmp-{}", svc.node.0);
        let size = transport::payload_len(&got);
        let write: FsResult<()> = async {
            let fd = svc.fs.create(&tmp).await?;
            for seg in got {
                svc.fs.write_bytes(fd, seg).await?;
            }
            svc.fs.close(fd).await?;
            svc.fs.rename(&tmp, path).await?;
            Ok(())
        }
        .await;
        if write.is_err() {
            let _ = svc.fs.unlink(&tmp).await;
            s.end();
            return None;
        }
        if let Some(st) = &svc.staging {
            st.cache_inserted(path, size);
        }
        s.end();
        let r = rec.region("read_single_buf");
        let got = try_read_local(&svc.fs, path).await;
        r.end();
        got
    }

    /// Whether this session has completed its cold first sync.
    pub fn is_warm(&self) -> bool {
        self.warmed
    }
}

/// Fallible cold synchronization (see [`cold_wait`]).
async fn try_cold_wait(
    svc: &Rc<DyadService>,
    rec: &Recorder,
    path: &str,
) -> Result<kvs::VersionedValue, TransportError> {
    if svc.spec.cold_sync_poll {
        // The counted variant reports polls on *both* exits: a consumer
        // that gave up after 40 polls still sent 40 RPCs, and dropping
        // them undercounted metadata load exactly on the runs (faulty
        // ones) where the poll pressure is most interesting.
        let (res, polls) = svc.kvs.try_wait_key_poll_counted(path).await;
        annotate_polls(svc, rec, path, polls);
        res
    } else {
        svc.kvs.try_wait_key(path).await
    }
}

/// The cold synchronization: a parked server-side watch by default, or
/// client-side polling under the `cold_sync_poll` ablation.
async fn cold_wait(svc: &Rc<DyadService>, rec: &Recorder, path: &str) -> kvs::VersionedValue {
    if svc.spec.cold_sync_poll {
        let (v, polls) = svc.kvs.wait_key_poll(path).await;
        annotate_polls(svc, rec, path, polls);
        v
    } else {
        svc.kvs.wait_key(path).await
    }
}

/// Record the poll count, plus a per-shard breakdown when the key lives
/// on a mesh, so the metadata-plane sweep can attribute poll load to
/// individual broker shards.
fn annotate_polls(svc: &Rc<DyadService>, rec: &Recorder, path: &str, polls: u64) {
    rec.annotate("kvs_polls", polls as f64);
    if let Some(shard) = svc.kvs.mesh_shard_of(path) {
        rec.annotate(&format!("kvs_polls_shard{shard}"), polls as f64);
    }
}

/// Read a whole local file; `None` when it vanished (staging eviction
/// between probe and open — the orphaned-inode semantics in `localfs`
/// cover an unlink *after* the open).
async fn try_read_local(fs: &LocalFs, path: &str) -> Option<Payload> {
    let fd = fs.open(path).await.ok()?;
    let data = fs.read_segments(fd).await.ok()?;
    let _ = fs.close(fd).await;
    Some(data)
}

/// Read a spilled frame's PFS copy; `None` when it is already retired.
async fn read_pfs(pfs: &PfsClient, path: &str) -> Option<Payload> {
    let fd = pfs.open(&staging::spill_path(path)).await.ok()?;
    let data = pfs.read_segments(fd).await.ok()?;
    let _ = pfs.close(fd).await;
    Some(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use kvs::{KvsClient, KvsServer, KvsSpec};
    use localfs::LocalFsSpec;
    use mdsim::{FrameTemplate, Model};
    use simcore::{Sim, SimTime};
    use transport::TransportSpec;

    struct Rig {
        services: Vec<Rc<DyadService>>,
        #[allow(dead_code)]
        kvs_server: Rc<KvsServer>,
    }

    /// n nodes; KVS broker on node 0; DYAD service + local fs on every
    /// node.
    fn setup(sim: &Sim, n: usize, spec: DyadSpec) -> Rig {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(n));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let kvs_server = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
        let services = (0..n as u32)
            .map(|i| {
                let fs = LocalFs::new(
                    &ctx,
                    cl.node(NodeId(i)).nvme.clone(),
                    LocalFsSpec::default(),
                );
                let kc = KvsClient::new(&ctx, &tp, NodeId(i), NodeId(0), KvsSpec::default());
                DyadService::start(&ctx, &tp, NodeId(i), fs, kc, spec.clone())
            })
            .collect();
        Rig {
            services,
            kvs_server,
        }
    }

    fn frame(step: u64) -> (FrameTemplate, Payload) {
        let t = FrameTemplate::generate(Model::Jac, 5);
        let f = t.frame_segments(step);
        (t, f)
    }

    #[test]
    fn produce_then_consume_same_node() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 1, DyadSpec::default());
        let svc = rig.services[0].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (t, f) = frame(880);
            svc.produce(&rec, "run0/frame0", f).await;
            let mut consumer = svc.consumer();
            let got = consumer.consume(&rec, "run0/frame0").await;
            (t.validate(&got, 880), rec.finish())
        });
        sim.run();
        let (ok, profile) = h.try_take().unwrap();
        assert!(ok, "frame corrupted");
        // Local path: flock sync, no fetch/store regions.
        assert!(profile.node(&["dyad_consume", "dyad_sync_flock"]).is_some());
        assert!(profile.node(&["dyad_consume", "dyad_get_data"]).is_none());
        assert!(profile.node(&["dyad_consume", "read_single_buf"]).is_some());
    }

    #[test]
    fn cross_node_consume_fetches_and_stages() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (t, f) = frame(1);
            prod.produce(&rec, "f1", f).await;
            let mut consumer = cons.consumer();
            let got = consumer.consume(&rec, "f1").await;
            (t.validate(&got, 1), rec.finish())
        });
        sim.run();
        let (ok, profile) = h.try_take().unwrap();
        assert!(ok);
        for region in [
            "dyad_fetch",
            "dyad_get_data",
            "dyad_cons_store",
            "read_single_buf",
        ] {
            assert!(
                profile.node(&["dyad_consume", region]).is_some(),
                "missing {region}"
            );
        }
        assert_eq!(rig.services[0].stats().fetches_served, 1);
        assert_eq!(rig.services[1].stats().consumes, 1);
    }

    #[test]
    fn consumer_blocks_until_producer_publishes() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let mut consumer = cons.consumer();
            let got = consumer.consume(&rec, "late").await;
            (ctx.now().as_secs_f64(), transport::payload_len(&got))
        });
        let ctx = sim.ctx();
        sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            ctx.sleep(SimDuration::from_millis(200)).await;
            let (_, f) = frame(0);
            prod.produce(&rec, "late", f).await;
        });
        sim.run();
        let (t, len) = h.try_take().unwrap();
        assert!(t >= 0.2, "consumed too early at {t}");
        assert_eq!(len, Model::Jac.frame_bytes());
        assert_eq!(rig.services[1].stats().cold_syncs, 1);
    }

    #[test]
    fn warm_path_after_first_frame() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (_, f0) = frame(0);
            let (_, f1) = frame(1);
            prod.produce(&rec, "a/0", f0).await;
            prod.produce(&rec, "a/1", f1).await;
            let mut consumer = cons.consumer();
            consumer.consume(&rec, "a/0").await;
            consumer.consume(&rec, "a/1").await;
            rec.finish()
        });
        sim.run();
        let profile = h.try_take().unwrap();
        let _ = profile;
        let st = rig.services[1].stats();
        assert_eq!(st.cold_syncs, 1);
        assert_eq!(st.warm_syncs, 1);
    }

    #[test]
    fn warm_sync_disabled_forces_cold_waits() {
        let sim = Sim::new(0);
        let spec = DyadSpec {
            warm_sync: false,
            ..DyadSpec::default()
        };
        let rig = setup(&sim, 2, spec);
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            for i in 0..3 {
                let (_, f) = frame(i);
                prod.produce(&rec, &format!("b/{i}"), f).await;
            }
            let mut consumer = cons.consumer();
            for i in 0..3 {
                consumer.consume(&rec, &format!("b/{i}")).await;
            }
        });
        sim.run();
        assert_eq!(rig.services[1].stats().cold_syncs, 3);
        assert_eq!(rig.services[1].stats().warm_syncs, 0);
    }

    #[test]
    fn produce_is_slower_than_raw_write_by_commit_overhead() {
        // The paper's Finding 1: DYAD production pays a metadata-
        // management premium over plain XFS writes.
        let sim = Sim::new(0);
        let rig = setup(&sim, 1, DyadSpec::default());
        let svc = rig.services[0].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (_, f) = frame(0);
            svc.produce(&rec, "p/0", f).await;
            rec.finish()
        });
        sim.run();
        let p = h.try_take().unwrap();
        let total = p.inclusive(&["dyad_produce"]).as_secs_f64();
        let write = p
            .inclusive(&["dyad_produce", "dyad_prod_write"])
            .as_secs_f64();
        let commit = p.inclusive(&["dyad_produce", "dyad_commit"]).as_secs_f64();
        assert!(commit > 0.0);
        assert!((write + commit - total).abs() < 1e-9);
        let ratio = total / write;
        assert!(
            ratio > 1.1 && ratio < 2.0,
            "produce/write ratio {ratio} out of the paper's ballpark"
        );
    }

    #[test]
    fn consumed_bytes_are_bit_identical_across_nodes() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 3, DyadSpec::default());
        let prod = rig.services[1].clone();
        let cons = rig.services[2].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let t = FrameTemplate::generate(Model::ApoA1, 9);
            let f = t.frame_segments(42);
            let flat_in = transport::flatten_payload(f.clone());
            prod.produce(&rec, "x", f).await;
            let mut consumer = cons.consumer();
            let got = consumer.consume(&rec, "x").await;
            let flat_out = transport::flatten_payload(got);
            flat_in == flat_out
        });
        sim.run();
        assert!(h.try_take().unwrap());
    }

    #[test]
    fn consume_falls_back_to_pfs_after_spill() {
        // Tight staging budget on the producer node: the evictor spills
        // unconsumed frames to the PFS; a cross-node consumer must still
        // get every frame bit-identical, via the KVS → RDMA → PFS
        // fallback chain, and its acks must let frames retire.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(4));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let _kvs_server = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
        let pfs = pfs::ParallelFs::start(
            &ctx,
            &tp,
            NodeId(2),
            vec![NodeId(3)],
            pfs::PfsSpec::default(),
        );
        let frame_bytes = Model::Jac.frame_bytes();
        let mk = |i: u32, budget: u64| {
            let fs = LocalFs::new(
                &ctx,
                cl.node(NodeId(i)).nvme.clone(),
                LocalFsSpec::default(),
            );
            let kc = KvsClient::new(&ctx, &tp, NodeId(i), NodeId(0), KvsSpec::default());
            let sspec = staging::StagingSpec {
                budget_bytes: budget,
                low_watermark: 0.4,
                high_watermark: 0.8,
                ..staging::StagingSpec::default()
            };
            let mgr = staging::StagingManager::new(
                &ctx,
                NodeId(i),
                fs.clone(),
                kc.clone(),
                Some(pfs.client(&ctx, NodeId(i))),
                sspec,
            );
            mgr.spawn_evictor();
            let svc = DyadService::start_staged(
                &ctx,
                &tp,
                NodeId(i),
                fs,
                kc,
                DyadSpec::default(),
                Some(mgr.clone()),
            );
            (svc, mgr)
        };
        let (prod, pmgr) = mk(0, 2 * frame_bytes);
        let (cons, cmgr) = mk(1, u64::MAX);
        pmgr.register_consumer("/dyad/s", "c0");
        {
            let prod = prod.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                let rec = Recorder::new(&ctx);
                for i in 0..4u64 {
                    let (_, f) = frame(i);
                    prod.produce(&rec, &format!("s/{i}"), f).await;
                    ctx.sleep(SimDuration::from_millis(300)).await;
                }
            });
        }
        let ctx2 = sim.ctx();
        let h = sim.spawn(async move {
            // Start late so the evictor has had to spill.
            ctx2.sleep(SimDuration::from_secs_f64(2.0)).await;
            let rec = Recorder::new(&ctx2);
            let mut session = cons.consumer_with_id("c0");
            let mut all_ok = true;
            for i in 0..4u64 {
                let t = FrameTemplate::generate(Model::Jac, 5);
                let got = session.consume(&rec, &format!("s/{i}")).await;
                all_ok &= t.validate(&got, i);
            }
            all_ok
        });
        sim.run_until(SimTime::from_nanos(20_000_000_000));
        assert_eq!(h.try_take(), Some(true), "corrupted or missing frame");
        assert!(
            pmgr.stats().spilled_frames >= 1,
            "budget never forced a spill"
        );
        assert!(
            cmgr.stats().pfs_fallbacks >= 1,
            "no consume took the PFS fallback"
        );
        assert_eq!(cmgr.stats().acks_published, 4);
        for r in pmgr.retire_log() {
            assert_eq!(
                r.acks_seen, r.required_acks,
                "premature retire of {}",
                r.path
            );
        }
    }

    #[test]
    fn pipelined_steady_state_has_tiny_warm_sync_cost() {
        // Producer stays one frame ahead; consumer's per-frame sync cost
        // after the first frame must be microseconds, not the frame
        // period (the essence of Findings 1 and 5).
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let period = SimDuration::from_millis(100);
        {
            let ctx = sim.ctx();
            sim.spawn(async move {
                let rec = Recorder::new(&ctx);
                for i in 0..10 {
                    ctx.sleep(period).await;
                    let (_, f) = frame(i);
                    prod.produce(&rec, &format!("s/{i}"), f).await;
                }
            });
        }
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let mut consumer = cons.consumer();
            for i in 0..10 {
                consumer.consume(&rec, &format!("s/{i}")).await;
                ctx.sleep(period).await; // analytics
            }
            rec.finish()
        });
        let report = sim.run_until(SimTime::from_nanos(10_000_000_000));
        assert!(report.is_clean());
        let p = h.try_take().unwrap();
        let fetch = p.node(&["dyad_consume", "dyad_fetch"]).unwrap();
        // 10 fetches; the first ~one period (cold), the rest ~10 µs each.
        assert_eq!(fetch.count, 10);
        let total = fetch.inclusive.as_secs_f64();
        assert!(total < 0.12, "sync cost {total}s — warm path not engaging");
        assert!(total > 0.09, "even the cold sync vanished: {total}s");
    }

    /// Staged rig with a fault board: prod=0, cons=1, KVS broker=2,
    /// PFS MDS=3 + one OST=4 (broker and PFS survive a node-0 crash).
    struct FaultRig {
        board: faults::FaultBoard,
        prod: Rc<DyadService>,
        cons: Rc<DyadService>,
        pmgr: Rc<staging::StagingManager>,
        cmgr: Rc<staging::StagingManager>,
        tp: Transport,
    }

    fn fault_setup(sim: &Sim, producer_budget: u64) -> FaultRig {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(5));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let board = faults::FaultBoard::new(&ctx, 5, 1);
        tp.set_faults(board.clone());
        let _kvs_server = KvsServer::start(&ctx, &tp, NodeId(2), KvsSpec::default());
        let pfs = pfs::ParallelFs::start(
            &ctx,
            &tp,
            NodeId(3),
            vec![NodeId(4)],
            pfs::PfsSpec::default(),
        );
        let mk = |i: u32, budget: u64| {
            let fs = LocalFs::new(
                &ctx,
                cl.node(NodeId(i)).nvme.clone(),
                LocalFsSpec::default(),
            );
            let kc = KvsClient::new(&ctx, &tp, NodeId(i), NodeId(2), KvsSpec::default());
            let sspec = staging::StagingSpec {
                budget_bytes: budget,
                // With a two-frame budget, drain only down to one frame:
                // the oldest spills, the newest stays NVMe-resident.
                low_watermark: 0.55,
                high_watermark: 0.8,
                ..staging::StagingSpec::default()
            };
            let mgr = staging::StagingManager::new(
                &ctx,
                NodeId(i),
                fs.clone(),
                kc.clone(),
                Some(pfs.client(&ctx, NodeId(i))),
                sspec,
            );
            mgr.spawn_evictor();
            let svc = DyadService::start_staged(
                &ctx,
                &tp,
                NodeId(i),
                fs,
                kc,
                DyadSpec::default(),
                Some(mgr.clone()),
            );
            (svc, mgr)
        };
        let (prod, pmgr) = mk(0, producer_budget);
        let (cons, cmgr) = mk(1, u64::MAX);
        // Wire the staging crash/restart lifecycle the way the runner
        // does.
        {
            let mgr = pmgr.clone();
            board.on_crash(move |n| {
                if n == 0 {
                    mgr.on_node_crash();
                }
            });
            let mgr = pmgr.clone();
            let hctx = ctx.clone();
            board.on_restart(move |n| {
                if n == 0 {
                    let mgr = mgr.clone();
                    hctx.spawn(async move { mgr.on_node_restart().await });
                }
            });
        }
        FaultRig {
            board,
            prod,
            cons,
            pmgr,
            cmgr,
            tp,
        }
    }

    #[test]
    fn try_consume_survives_producer_crash_via_pfs_and_tombstones() {
        // Producer writes two frames; the tight budget spills frame 0 to
        // the PFS. Node 0 then crashes with frame 1 still NVMe-resident.
        // The consumer must fetch frame 0 from the spill copy (dead
        // owner → PFS fallback) and get a typed FrameLost for frame 1
        // once the restart publishes its tombstone — never a hang.
        let sim = Sim::new(7);
        let frame_bytes = Model::Jac.frame_bytes();
        let rig = fault_setup(&sim, 2 * frame_bytes);
        rig.pmgr.register_consumer("/dyad/s", "c0");
        let plan = faults::FaultPlan::scheduled(vec![faults::FaultEvent {
            at: SimDuration::from_secs(1),
            kind: faults::FaultKind::NodeCrash {
                node: 0,
                down_for: SimDuration::from_secs(2),
            },
        }]);
        rig.board.arm(&plan);
        {
            let prod = rig.prod.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                let rec = Recorder::new(&ctx);
                for i in 0..2u64 {
                    let (_, f) = frame(i);
                    prod.produce(&rec, &format!("s/{i}"), f).await;
                    ctx.sleep(SimDuration::from_millis(200)).await;
                }
            });
        }
        let ctx2 = sim.ctx();
        let cons = rig.cons.clone();
        let h = sim.spawn(async move {
            // Start inside the outage window.
            ctx2.sleep(SimDuration::from_millis(1_200)).await;
            let rec = Recorder::new(&ctx2);
            let mut session = cons.consumer_with_id("c0");
            let t = FrameTemplate::generate(Model::Jac, 5);
            let spilled = session.try_consume(&rec, "s/0").await;
            let ok0 = matches!(&spilled, Ok(got) if t.validate(got, 0));
            let lost = session.try_consume(&rec, "s/1").await;
            (ok0, lost)
        });
        sim.run_until(SimTime::from_nanos(60_000_000_000));
        let (ok0, lost) = h.try_take().expect("chaos consume hung");
        assert!(ok0, "spilled frame did not survive the crash");
        assert_eq!(
            lost,
            Err(DyadError::FrameLost {
                path: "/dyad/s/1".to_string()
            })
        );
        assert!(rig.pmgr.stats().spilled_frames >= 1, "no spill happened");
        assert!(rig.pmgr.stats().frames_lost >= 1, "crash lost no frame");
        assert!(
            rig.pmgr.stats().republished_frames >= 1,
            "restart republished nothing"
        );
        assert!(
            rig.cmgr.stats().pfs_fallbacks >= 1,
            "no consume took the PFS fallback"
        );
        assert!(rig.tp.stats().rpc_retries > 0, "no retry was exercised");
        assert_eq!(rig.board.stats().crashes, 1);
    }

    #[test]
    fn dropped_spill_copy_surfaces_typed_frame_lost() {
        // A frame whose only remaining copy (the PFS spill) is dropped
        // must surface FrameLost to consumers instead of parking them
        // forever on a dangling metadata entry.
        let sim = Sim::new(3);
        let frame_bytes = Model::Jac.frame_bytes();
        let rig = fault_setup(&sim, frame_bytes);
        rig.pmgr.register_consumer("/dyad/s", "c0");
        {
            let prod = rig.prod.clone();
            let pmgr = rig.pmgr.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                let rec = Recorder::new(&ctx);
                let (_, f) = frame(0);
                prod.produce(&rec, "s/0", f).await;
                // Wait out the evictor (budget of one frame forces the
                // spill), then lose the spill copy.
                ctx.sleep(SimDuration::from_secs(2)).await;
                assert!(
                    pmgr.stats().spilled_frames >= 1,
                    "budget never forced a spill"
                );
                pmgr.mark_spill_lost("/dyad/s/0").await;
            });
        }
        let ctx2 = sim.ctx();
        let cons = rig.cons.clone();
        let h = sim.spawn(async move {
            ctx2.sleep(SimDuration::from_secs(3)).await;
            let rec = Recorder::new(&ctx2);
            let mut session = cons.consumer_with_id("c0");
            session.try_consume(&rec, "s/0").await
        });
        sim.run_until(SimTime::from_nanos(30_000_000_000));
        let res = h.try_take().expect("consume of a lost frame hung");
        assert_eq!(
            res,
            Err(DyadError::FrameLost {
                path: "/dyad/s/0".to_string()
            })
        );
        assert_eq!(rig.pmgr.stats().frames_lost, 1);
    }
}
