//! # dyad — the Dynamic and Asynchronous Data Streamliner
//!
//! A reimplementation of DYAD's runtime behaviour (flux-framework/dyad)
//! against the simulated substrates, following §III-A of the paper:
//!
//! * **Producers** write frames to *node-local storage* (the node's
//!   [`localfs::LocalFs`] managed directory) and publish
//!   `(owner, size)` metadata to the Flux-like [`kvs`] — the "global
//!   metadata management" of Figure 2.
//! * **Consumers** synchronize with *multi-protocol automatic
//!   synchronization*: the first access to a not-yet-produced frame
//!   parks in a KVS watch (the expensive, loosely coupled protocol);
//!   once the pipeline is warm, data is already published and the sync
//!   degrades to a cheap flock-style probe plus an immediate KVS
//!   answer.
//! * Remote data moves with **RDMA-style transfer** over the UCX-like
//!   [`transport`] (`dyad_get_data`), is staged into the consumer's
//!   node-local storage (`dyad_cons_store`), and is finally read by the
//!   application (`read_single_buf`) — the exact call tree Figure 9
//!   analyzes.
//!
//! Every phase is wrapped in [`instrument`] regions with the paper's
//! region names, so Thicket queries can split data-movement time from
//! synchronization (idle) time the same way the authors did.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use cluster::NodeId;
use instrument::Recorder;
use kvs::KvsClient;
use localfs::{LocalFs, LockKind};
use pfs::PfsClient;
use simcore::resource::FifoResource;
use simcore::{Ctx, SimDuration};
use staging::StagingManager;
use transport::{AmId, Endpoint, LocalBoxFuture, Payload, Transport};

pub use staging::{FrameLocation, FrameMeta};

/// The AM id of the per-node DYAD data service.
pub const DYAD_AM: AmId = AmId(0x4459);

/// DYAD tuning parameters.
#[derive(Debug, Clone)]
pub struct DyadSpec {
    /// Root of the DYAD-managed directory on every node's local fs.
    pub managed_dir: String,
    /// CPU overhead of global-namespace management per produce (the
    /// metadata bookkeeping the paper blames for DYAD's 1.4× slower
    /// production).
    pub produce_overhead: SimDuration,
    /// Service threads in the per-node data service.
    pub service_threads: u64,
    /// Request-processing time in the data service (excluding I/O).
    pub service_time: SimDuration,
    /// Enable the warm flock-style fast path (disable to force KVS
    /// waits on every access — the synchronization ablation).
    pub warm_sync: bool,
    /// Use client-side polling for the cold synchronization instead of
    /// a server-side KVS watch (the naive protocol DYAD's automatic
    /// synchronization replaces; ablation knob).
    pub cold_sync_poll: bool,
}

impl Default for DyadSpec {
    fn default() -> Self {
        DyadSpec {
            managed_dir: "/dyad".to_string(),
            produce_overhead: SimDuration::from_micros(60),
            service_threads: 4,
            service_time: SimDuration::from_micros(10),
            warm_sync: true,
            cold_sync_poll: false,
        }
    }
}

/// Operation counters for one node's DYAD service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DyadStats {
    /// Frames produced through this service.
    pub produces: u64,
    /// Frames consumed through this service.
    pub consumes: u64,
    /// Consumptions that parked in a KVS watch (cold syncs).
    pub cold_syncs: u64,
    /// Consumptions satisfied by the warm fast path.
    pub warm_syncs: u64,
    /// Consumptions that found the data already node-local.
    pub local_hits: u64,
    /// Remote fetches served *by* this node (owner side).
    pub fetches_served: u64,
    /// Bytes produced.
    pub bytes_produced: u64,
    /// Bytes consumed.
    pub bytes_consumed: u64,
}

struct ServiceInner {
    stats: DyadStats,
    dirs_made: std::collections::HashSet<String>,
}

/// The per-node DYAD service: owns the node's managed directory, serves
/// remote fetch requests, and provides the produce/consume API.
pub struct DyadService {
    ctx: Ctx,
    node: NodeId,
    fs: LocalFs,
    kvs: KvsClient,
    ep: Endpoint,
    spec: Rc<DyadSpec>,
    staging: Option<Rc<StagingManager>>,
    inner: Rc<RefCell<ServiceInner>>,
}

impl DyadService {
    /// Start DYAD on `node` with unbounded staging (the paper's
    /// configuration: frames stay on NVMe forever).
    pub fn start(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        fs: LocalFs,
        kvs: KvsClient,
        spec: DyadSpec,
    ) -> Rc<DyadService> {
        Self::start_staged(ctx, tp, node, fs, kvs, spec, None)
    }

    /// Start DYAD on `node` under a [`StagingManager`]: produces pass
    /// admission control (backpressure) and register in the staged-frame
    /// lifecycle; consumes publish acknowledgements and fall back to the
    /// PFS copy when the evictor spilled a frame. Registers the
    /// data-service handler that answers `dyad_get_data` requests from
    /// consumers on other nodes.
    pub fn start_staged(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        fs: LocalFs,
        kvs: KvsClient,
        spec: DyadSpec,
        staging: Option<Rc<StagingManager>>,
    ) -> Rc<DyadService> {
        let spec = Rc::new(spec);
        let inner = Rc::new(RefCell::new(ServiceInner {
            stats: DyadStats::default(),
            dirs_made: std::collections::HashSet::new(),
        }));
        let service = FifoResource::new(ctx, spec.service_threads);
        let svc = Rc::new(DyadService {
            ctx: ctx.clone(),
            node,
            fs: fs.clone(),
            kvs,
            ep: tp.endpoint(node),
            spec: spec.clone(),
            staging,
            inner: inner.clone(),
        });
        let hfs = fs;
        let hspec = spec;
        let hinner = inner;
        tp.register_bulk(
            node,
            DYAD_AM,
            Rc::new(move |hdr: Bytes, _payload: Payload| {
                let fs = hfs.clone();
                let spec = hspec.clone();
                let inner = hinner.clone();
                let service = service.clone();
                Box::pin(async move {
                    service.request(spec.service_time).await;
                    let path = String::from_utf8(hdr.to_vec()).expect("utf-8 path");
                    let data = match fs.open(&path).await {
                        Ok(fd) => {
                            let segs = fs.read_segments(fd).await.unwrap_or_default();
                            let _ = fs.close(fd).await;
                            segs
                        }
                        Err(_) => Vec::new(),
                    };
                    inner.borrow_mut().stats.fetches_served += 1;
                    (Bytes::new(), data)
                }) as LocalBoxFuture<(Bytes, Payload)>
            }),
        );
        svc
    }

    /// The node this service runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Operation counters.
    pub fn stats(&self) -> DyadStats {
        self.inner.borrow().stats
    }

    /// The managed path for a logical frame name.
    pub fn managed_path(&self, name: &str) -> String {
        format!("{}/{}", self.spec.managed_dir, name.trim_start_matches('/'))
    }

    async fn ensure_dirs(&self, path: &str) {
        let Some(dir) = path.rsplit_once('/').map(|(d, _)| d.to_string()) else {
            return;
        };
        let need = !self.inner.borrow().dirs_made.contains(&dir);
        if need {
            let _ = self.fs.mkdir_p(&dir).await;
            self.inner.borrow_mut().dirs_made.insert(dir);
        }
    }

    /// Produce a frame: write to node-local storage, then publish
    /// metadata to the KVS.
    ///
    /// Call tree: `dyad_produce` → { `dyad_prod_write`, `dyad_commit` }.
    pub async fn produce(&self, rec: &Recorder, name: &str, frame: Payload) {
        let path = self.managed_path(name);
        let size = transport::payload_len(&frame);
        let g = rec.region("dyad_produce");
        // Admission control: above the staging high watermark the
        // producer blocks here until the evictor frees space. The stall
        // is its own region so `report` can split it out of production
        // time as idle rather than movement.
        if let Some(st) = &self.staging {
            if st.would_block(size) {
                let b = rec.region("staging_backpressure");
                st.admit(size).await;
                b.end();
            }
        }
        {
            // Write to a temp name and rename: the frame becomes visible
            // atomically, so a same-node consumer can never observe a
            // partially written file.
            let w = rec.region("dyad_prod_write");
            self.ensure_dirs(&path).await;
            let tmp = format!("{path}.tmp");
            let fd = self.fs.create(&tmp).await.expect("managed dir exists");
            for seg in frame {
                self.fs.write_bytes(fd, seg).await.expect("local write");
            }
            self.fs.close(fd).await.expect("close");
            self.fs.rename(&tmp, &path).await.expect("publish rename");
            w.end();
        }
        if let Some(st) = &self.staging {
            st.frame_written(&path, size);
        }
        {
            let c = rec.region("dyad_commit");
            // Global-namespace bookkeeping (hashing, path registration).
            self.ctx.sleep(self.spec.produce_overhead).await;
            let meta = FrameMeta {
                owner: self.node,
                size,
                location: FrameLocation::Nvme,
            };
            self.kvs.commit(&path, meta.encode()).await;
            c.end();
        }
        if let Some(st) = &self.staging {
            st.frame_published(&path);
        }
        g.end();
        let mut inner = self.inner.borrow_mut();
        inner.stats.produces += 1;
        inner.stats.bytes_produced += size;
    }

    /// Open a consumer session (tracks warm/cold synchronization state,
    /// one per consumer process). The session id defaults to the node
    /// name; sessions whose acks feed staging retention should use
    /// [`DyadService::consumer_with_id`] with the id the workflow
    /// registered on the producer's staging manager.
    pub fn consumer(self: &Rc<Self>) -> DyadConsumer {
        self.consumer_with_id(&format!("n{}", self.node.0))
    }

    /// Open a consumer session with an explicit consumption-ack id.
    pub fn consumer_with_id(self: &Rc<Self>, id: &str) -> DyadConsumer {
        DyadConsumer {
            svc: self.clone(),
            id: id.to_string(),
            warmed: false,
        }
    }
}

/// Consumer-side session state for multi-protocol synchronization.
pub struct DyadConsumer {
    svc: Rc<DyadService>,
    id: String,
    warmed: bool,
}

impl DyadConsumer {
    /// Consume a frame by logical name, returning its payload.
    ///
    /// Call tree: `dyad_consume` → { `dyad_sync_flock` or `dyad_fetch`,
    /// `dyad_get_data`, `dyad_cons_store`, `read_single_buf` }, matching
    /// Figure 9.
    pub async fn consume(&mut self, rec: &Recorder, name: &str) -> Payload {
        let svc = self.svc.clone();
        let path = svc.managed_path(name);
        let g = rec.region("dyad_consume");

        // --- Synchronization ------------------------------------------
        // Local presence first (single-node deployments): a flock probe
        // suffices once the producer shares our filesystem.
        let mut data: Option<Payload> = None;
        if svc.fs.exists(&path) {
            let f = rec.region("dyad_sync_flock");
            svc.fs
                .flock(&path, LockKind::Shared)
                .await
                .expect("flock on existing file");
            svc.fs
                .funlock(&path, LockKind::Shared)
                .await
                .expect("funlock");
            f.end();
            // Node-local: direct read. Under staging, the evictor may
            // retire or spill the frame between the probe and the read;
            // a miss falls through to metadata resolution below.
            let r = rec.region("read_single_buf");
            data = try_read_local(&svc.fs, &path).await;
            r.end();
            if data.is_some() {
                svc.inner.borrow_mut().stats.local_hits += 1;
                self.warmed = true;
            }
        }

        if data.is_none() {
            // Remote (or evicted) data: resolve the owner through the
            // KVS.
            let f = rec.region("dyad_fetch");
            let mut meta;
            if self.warmed && svc.spec.warm_sync {
                // Warm path: data is normally already published — one
                // cheap, non-blocking lookup.
                match svc.kvs.lookup(&path).await {
                    Some(v) => {
                        svc.inner.borrow_mut().stats.warm_syncs += 1;
                        meta = FrameMeta::decode(v.value);
                    }
                    None => {
                        // Producer fell behind: fall back to the
                        // loosely coupled blocking watch.
                        rec.annotate("cold_fallbacks", 1.0);
                        svc.inner.borrow_mut().stats.cold_syncs += 1;
                        let v = cold_wait(&svc, rec, &path).await;
                        meta = FrameMeta::decode(v.value);
                    }
                }
            } else {
                // Cold path (first access): park in a KVS watch (or
                // poll, if the ablation knob says so).
                svc.inner.borrow_mut().stats.cold_syncs += 1;
                let v = cold_wait(&svc, rec, &path).await;
                meta = FrameMeta::decode(v.value);
            }
            f.end();
            self.warmed = true;

            // --- Data movement ----------------------------------------
            // The staging evictor can move a frame between our metadata
            // read and the data fetch (NVMe → PFS on spill). The spill
            // republishes metadata *before* unlinking the NVMe copy, so
            // one re-lookup always observes the new location; the bound
            // is a defensive backstop.
            let mut attempts = 0;
            let fetched = loop {
                attempts += 1;
                assert!(
                    attempts <= 8,
                    "frame {path} unresolvable (evicted mid-consume?)"
                );
                match meta.location {
                    FrameLocation::Pfs => {
                        // Spilled: fetch the PFS copy directly.
                        let pfs = svc
                            .staging
                            .as_ref()
                            .and_then(|st| st.pfs_client())
                            .expect("spilled frame but no PFS client configured");
                        let r = rec.region("dyad_pfs_fallback");
                        let got = read_pfs(pfs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            if let Some(st) = &svc.staging {
                                st.note_pfs_fallback();
                            }
                            break got;
                        }
                    }
                    FrameLocation::Nvme if meta.owner == svc.node => {
                        // Published by a producer on our own node.
                        let r = rec.region("read_single_buf");
                        let got = try_read_local(&svc.fs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            break got;
                        }
                    }
                    FrameLocation::Nvme => {
                        // RDMA fetch from the owner's node-local
                        // storage. An empty payload means the owner no
                        // longer holds the file (spilled underneath us).
                        let r = rec.region("dyad_get_data");
                        let (_, got) = svc
                            .ep
                            .bulk_rpc(
                                meta.owner,
                                DYAD_AM,
                                Bytes::copy_from_slice(path.as_bytes()),
                                Vec::new(),
                            )
                            .await;
                        r.end();
                        if transport::payload_len(&got) > 0 {
                            // Stage into our node-local cache, with the
                            // same atomic rename publication (other
                            // consumer sessions on this node must never
                            // see a partial cache file).
                            let s = rec.region("dyad_cons_store");
                            svc.ensure_dirs(&path).await;
                            let tmp = format!("{path}.tmp-{}", svc.node.0);
                            let fd = svc.fs.create(&tmp).await.expect("managed dir");
                            let size = transport::payload_len(&got);
                            for seg in got {
                                svc.fs.write_bytes(fd, seg).await.expect("store");
                            }
                            svc.fs.close(fd).await.expect("close");
                            svc.fs.rename(&tmp, &path).await.expect("cache rename");
                            if let Some(st) = &svc.staging {
                                st.cache_inserted(&path, size);
                            }
                            s.end();
                            // Application read from the warm local cache.
                            let r = rec.region("read_single_buf");
                            let got = try_read_local(&svc.fs, &path).await;
                            r.end();
                            if let Some(got) = got {
                                break got;
                            }
                        }
                    }
                }
                // Re-read the metadata and try again at its new home.
                let v = svc
                    .kvs
                    .lookup(&path)
                    .await
                    .unwrap_or_else(|| panic!("frame {path} retired before consume"));
                meta = FrameMeta::decode(v.value);
            };
            data = Some(fetched);
        }
        let data = data.expect("consume resolved a payload");
        g.end();

        // Publish the consumption ack asynchronously: retention cares,
        // the application does not, so the commit must not add to the
        // consume latency.
        if let Some(st) = &svc.staging {
            let st = st.clone();
            let p = path.clone();
            let id = self.id.clone();
            svc.ctx.spawn(async move {
                st.publish_ack(&p, &id).await;
            });
        }

        let size = transport::payload_len(&data);
        let mut inner = svc.inner.borrow_mut();
        inner.stats.consumes += 1;
        inner.stats.bytes_consumed += size;
        data
    }

    /// Whether this session has completed its cold first sync.
    pub fn is_warm(&self) -> bool {
        self.warmed
    }
}

/// The cold synchronization: a parked server-side watch by default, or
/// client-side polling under the `cold_sync_poll` ablation.
async fn cold_wait(svc: &Rc<DyadService>, rec: &Recorder, path: &str) -> kvs::VersionedValue {
    if svc.spec.cold_sync_poll {
        let (v, polls) = svc.kvs.wait_key_poll(path).await;
        rec.annotate("kvs_polls", polls as f64);
        v
    } else {
        svc.kvs.wait_key(path).await
    }
}

/// Read a whole local file; `None` when it vanished (staging eviction
/// between probe and open — the orphaned-inode semantics in `localfs`
/// cover an unlink *after* the open).
async fn try_read_local(fs: &LocalFs, path: &str) -> Option<Payload> {
    let fd = fs.open(path).await.ok()?;
    let data = fs.read_segments(fd).await.ok()?;
    let _ = fs.close(fd).await;
    Some(data)
}

/// Read a spilled frame's PFS copy; `None` when it is already retired.
async fn read_pfs(pfs: &PfsClient, path: &str) -> Option<Payload> {
    let fd = pfs.open(&staging::spill_path(path)).await.ok()?;
    let data = pfs.read_segments(fd).await.ok()?;
    let _ = pfs.close(fd).await;
    Some(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use kvs::{KvsServer, KvsSpec};
    use localfs::LocalFsSpec;
    use mdsim::{FrameTemplate, Model};
    use simcore::{Sim, SimTime};
    use transport::TransportSpec;

    struct Rig {
        services: Vec<Rc<DyadService>>,
        #[allow(dead_code)]
        kvs_server: Rc<KvsServer>,
    }

    /// n nodes; KVS broker on node 0; DYAD service + local fs on every
    /// node.
    fn setup(sim: &Sim, n: usize, spec: DyadSpec) -> Rig {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(n));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let kvs_server = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
        let services = (0..n as u32)
            .map(|i| {
                let fs = LocalFs::new(
                    &ctx,
                    cl.node(NodeId(i)).nvme.clone(),
                    LocalFsSpec::default(),
                );
                let kc = KvsClient::new(&ctx, &tp, NodeId(i), NodeId(0), KvsSpec::default());
                DyadService::start(&ctx, &tp, NodeId(i), fs, kc, spec.clone())
            })
            .collect();
        Rig {
            services,
            kvs_server,
        }
    }

    fn frame(step: u64) -> (FrameTemplate, Payload) {
        let t = FrameTemplate::generate(Model::Jac, 5);
        let f = t.frame_segments(step);
        (t, f)
    }

    #[test]
    fn produce_then_consume_same_node() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 1, DyadSpec::default());
        let svc = rig.services[0].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (t, f) = frame(880);
            svc.produce(&rec, "run0/frame0", f).await;
            let mut consumer = svc.consumer();
            let got = consumer.consume(&rec, "run0/frame0").await;
            (t.validate(&got, 880), rec.finish())
        });
        sim.run();
        let (ok, profile) = h.try_take().unwrap();
        assert!(ok, "frame corrupted");
        // Local path: flock sync, no fetch/store regions.
        assert!(profile.node(&["dyad_consume", "dyad_sync_flock"]).is_some());
        assert!(profile.node(&["dyad_consume", "dyad_get_data"]).is_none());
        assert!(profile.node(&["dyad_consume", "read_single_buf"]).is_some());
    }

    #[test]
    fn cross_node_consume_fetches_and_stages() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (t, f) = frame(1);
            prod.produce(&rec, "f1", f).await;
            let mut consumer = cons.consumer();
            let got = consumer.consume(&rec, "f1").await;
            (t.validate(&got, 1), rec.finish())
        });
        sim.run();
        let (ok, profile) = h.try_take().unwrap();
        assert!(ok);
        for region in [
            "dyad_fetch",
            "dyad_get_data",
            "dyad_cons_store",
            "read_single_buf",
        ] {
            assert!(
                profile.node(&["dyad_consume", region]).is_some(),
                "missing {region}"
            );
        }
        assert_eq!(rig.services[0].stats().fetches_served, 1);
        assert_eq!(rig.services[1].stats().consumes, 1);
    }

    #[test]
    fn consumer_blocks_until_producer_publishes() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let mut consumer = cons.consumer();
            let got = consumer.consume(&rec, "late").await;
            (ctx.now().as_secs_f64(), transport::payload_len(&got))
        });
        let ctx = sim.ctx();
        sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            ctx.sleep(SimDuration::from_millis(200)).await;
            let (_, f) = frame(0);
            prod.produce(&rec, "late", f).await;
        });
        sim.run();
        let (t, len) = h.try_take().unwrap();
        assert!(t >= 0.2, "consumed too early at {t}");
        assert_eq!(len, Model::Jac.frame_bytes());
        assert_eq!(rig.services[1].stats().cold_syncs, 1);
    }

    #[test]
    fn warm_path_after_first_frame() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (_, f0) = frame(0);
            let (_, f1) = frame(1);
            prod.produce(&rec, "a/0", f0).await;
            prod.produce(&rec, "a/1", f1).await;
            let mut consumer = cons.consumer();
            consumer.consume(&rec, "a/0").await;
            consumer.consume(&rec, "a/1").await;
            rec.finish()
        });
        sim.run();
        let profile = h.try_take().unwrap();
        let _ = profile;
        let st = rig.services[1].stats();
        assert_eq!(st.cold_syncs, 1);
        assert_eq!(st.warm_syncs, 1);
    }

    #[test]
    fn warm_sync_disabled_forces_cold_waits() {
        let sim = Sim::new(0);
        let spec = DyadSpec {
            warm_sync: false,
            ..DyadSpec::default()
        };
        let rig = setup(&sim, 2, spec);
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            for i in 0..3 {
                let (_, f) = frame(i);
                prod.produce(&rec, &format!("b/{i}"), f).await;
            }
            let mut consumer = cons.consumer();
            for i in 0..3 {
                consumer.consume(&rec, &format!("b/{i}")).await;
            }
        });
        sim.run();
        assert_eq!(rig.services[1].stats().cold_syncs, 3);
        assert_eq!(rig.services[1].stats().warm_syncs, 0);
    }

    #[test]
    fn produce_is_slower_than_raw_write_by_commit_overhead() {
        // The paper's Finding 1: DYAD production pays a metadata-
        // management premium over plain XFS writes.
        let sim = Sim::new(0);
        let rig = setup(&sim, 1, DyadSpec::default());
        let svc = rig.services[0].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (_, f) = frame(0);
            svc.produce(&rec, "p/0", f).await;
            rec.finish()
        });
        sim.run();
        let p = h.try_take().unwrap();
        let total = p.inclusive(&["dyad_produce"]).as_secs_f64();
        let write = p
            .inclusive(&["dyad_produce", "dyad_prod_write"])
            .as_secs_f64();
        let commit = p.inclusive(&["dyad_produce", "dyad_commit"]).as_secs_f64();
        assert!(commit > 0.0);
        assert!((write + commit - total).abs() < 1e-9);
        let ratio = total / write;
        assert!(
            ratio > 1.1 && ratio < 2.0,
            "produce/write ratio {ratio} out of the paper's ballpark"
        );
    }

    #[test]
    fn consumed_bytes_are_bit_identical_across_nodes() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 3, DyadSpec::default());
        let prod = rig.services[1].clone();
        let cons = rig.services[2].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let t = FrameTemplate::generate(Model::ApoA1, 9);
            let f = t.frame_segments(42);
            let flat_in = transport::flatten_payload(f.clone());
            prod.produce(&rec, "x", f).await;
            let mut consumer = cons.consumer();
            let got = consumer.consume(&rec, "x").await;
            let flat_out = transport::flatten_payload(got);
            flat_in == flat_out
        });
        sim.run();
        assert!(h.try_take().unwrap());
    }

    #[test]
    fn consume_falls_back_to_pfs_after_spill() {
        // Tight staging budget on the producer node: the evictor spills
        // unconsumed frames to the PFS; a cross-node consumer must still
        // get every frame bit-identical, via the KVS → RDMA → PFS
        // fallback chain, and its acks must let frames retire.
        let sim = Sim::new(0);
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(4));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let _kvs_server = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
        let pfs = pfs::ParallelFs::start(
            &ctx,
            &tp,
            NodeId(2),
            vec![NodeId(3)],
            pfs::PfsSpec::default(),
        );
        let frame_bytes = Model::Jac.frame_bytes();
        let mk = |i: u32, budget: u64| {
            let fs = LocalFs::new(
                &ctx,
                cl.node(NodeId(i)).nvme.clone(),
                LocalFsSpec::default(),
            );
            let kc = KvsClient::new(&ctx, &tp, NodeId(i), NodeId(0), KvsSpec::default());
            let sspec = staging::StagingSpec {
                budget_bytes: budget,
                low_watermark: 0.4,
                high_watermark: 0.8,
                ..staging::StagingSpec::default()
            };
            let mgr = staging::StagingManager::new(
                &ctx,
                NodeId(i),
                fs.clone(),
                kc.clone(),
                Some(pfs.client(&ctx, NodeId(i))),
                sspec,
            );
            mgr.spawn_evictor();
            let svc = DyadService::start_staged(
                &ctx,
                &tp,
                NodeId(i),
                fs,
                kc,
                DyadSpec::default(),
                Some(mgr.clone()),
            );
            (svc, mgr)
        };
        let (prod, pmgr) = mk(0, 2 * frame_bytes);
        let (cons, cmgr) = mk(1, u64::MAX);
        pmgr.register_consumer("/dyad/s", "c0");
        {
            let prod = prod.clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                let rec = Recorder::new(&ctx);
                for i in 0..4u64 {
                    let (_, f) = frame(i);
                    prod.produce(&rec, &format!("s/{i}"), f).await;
                    ctx.sleep(SimDuration::from_millis(300)).await;
                }
            });
        }
        let ctx2 = sim.ctx();
        let h = sim.spawn(async move {
            // Start late so the evictor has had to spill.
            ctx2.sleep(SimDuration::from_secs_f64(2.0)).await;
            let rec = Recorder::new(&ctx2);
            let mut session = cons.consumer_with_id("c0");
            let mut all_ok = true;
            for i in 0..4u64 {
                let t = FrameTemplate::generate(Model::Jac, 5);
                let got = session.consume(&rec, &format!("s/{i}")).await;
                all_ok &= t.validate(&got, i);
            }
            all_ok
        });
        sim.run_until(SimTime::from_nanos(20_000_000_000));
        assert_eq!(h.try_take(), Some(true), "corrupted or missing frame");
        assert!(
            pmgr.stats().spilled_frames >= 1,
            "budget never forced a spill"
        );
        assert!(
            cmgr.stats().pfs_fallbacks >= 1,
            "no consume took the PFS fallback"
        );
        assert_eq!(cmgr.stats().acks_published, 4);
        for r in pmgr.retire_log() {
            assert_eq!(
                r.acks_seen, r.required_acks,
                "premature retire of {}",
                r.path
            );
        }
    }

    #[test]
    fn pipelined_steady_state_has_tiny_warm_sync_cost() {
        // Producer stays one frame ahead; consumer's per-frame sync cost
        // after the first frame must be microseconds, not the frame
        // period (the essence of Findings 1 and 5).
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, DyadSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let period = SimDuration::from_millis(100);
        {
            let ctx = sim.ctx();
            sim.spawn(async move {
                let rec = Recorder::new(&ctx);
                for i in 0..10 {
                    ctx.sleep(period).await;
                    let (_, f) = frame(i);
                    prod.produce(&rec, &format!("s/{i}"), f).await;
                }
            });
        }
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let mut consumer = cons.consumer();
            for i in 0..10 {
                consumer.consume(&rec, &format!("s/{i}")).await;
                ctx.sleep(period).await; // analytics
            }
            rec.finish()
        });
        let report = sim.run_until(SimTime::from_nanos(10_000_000_000));
        assert!(report.is_clean());
        let p = h.try_take().unwrap();
        let fetch = p.node(&["dyad_consume", "dyad_fetch"]).unwrap();
        // 10 fetches; the first ~one period (cold), the rest ~10 µs each.
        assert_eq!(fetch.count, 10);
        let total = fetch.inclusive.as_secs_f64();
        assert!(total < 0.12, "sync cost {total}s — warm path not engaging");
        assert!(total > 0.09, "even the cold sync vanished: {total}s");
    }
}
