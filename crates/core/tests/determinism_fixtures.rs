//! Same-seed determinism against pinned fixtures (PR 4).
//!
//! Two fixture files guard the hot-path overhaul:
//!
//! * `determinism_pr4.json` — captured on the code *before* the
//!   virtual-time bandwidth model and executor rework. DYAD and XFS
//!   makespans must match it bit-for-bit (the virtual-time model is
//!   algebraically identical for their flow patterns); Lustre is allowed
//!   a tiny relative drift because exact finish tags replace the old
//!   `FINISH_EPS` residual threshold in a float-sensitive interference
//!   mix. Staging lifecycle counters must match exactly everywhere.
//! * `determinism_pr4_pinned.json` — captured on the *current* model.
//!   Everything, including event counts, must match exactly; any change
//!   here means a code change silently altered trajectories.
//!
//! Run `hotpath --fixtures <path>` to regenerate after an intentional
//! trajectory change, and say so in the commit message.

use mdflow::prelude::*;

const BEFORE: &str = include_str!("fixtures/determinism_pr4.json");
const PINNED: &str = include_str!("fixtures/determinism_pr4_pinned.json");

/// Largest relative makespan drift tolerated for Lustre vs the
/// before-overhaul capture (observed ~1e-4 at 64 pairs).
const LUSTRE_TOL: f64 = 5e-4;

struct Fixture {
    solution: &'static str,
    pairs: u32,
    frames: u64,
    seed: u64,
    makespan_ns: u64,
    events: u64,
    staging: serde_json::Value,
}

fn parse(raw: &'static str) -> Vec<Fixture> {
    let v: serde_json::Value = serde_json::from_str(raw).expect("fixture json");
    v["fixtures"]
        .as_array()
        .expect("fixtures array")
        .iter()
        .map(|f| Fixture {
            solution: match f["solution"].as_str().expect("solution") {
                "dyad" => "dyad",
                "xfs" => "xfs",
                "lustre" => "lustre",
                other => panic!("unknown solution {other}"),
            },
            pairs: f["pairs"].as_u64().expect("pairs") as u32,
            frames: f["frames"].as_u64().expect("frames"),
            seed: f["seed"].as_u64().expect("seed"),
            makespan_ns: f["makespan_ns"].as_u64().expect("makespan_ns"),
            events: f["events"].as_u64().expect("events"),
            staging: f["staging"].clone(),
        })
        .collect()
}

fn run(f: &Fixture) -> RunMetrics {
    let cal = Calibration::corona();
    let wf = match f.solution {
        "dyad" => WorkflowConfig::new(
            Solution::Dyad,
            f.pairs,
            Placement::Split { pairs_per_node: 8 },
        ),
        "xfs" => WorkflowConfig::new(Solution::Xfs, f.pairs, Placement::SingleNode),
        "lustre" => WorkflowConfig::new(
            Solution::Lustre,
            f.pairs,
            Placement::Split { pairs_per_node: 8 },
        ),
        other => panic!("unknown solution {other}"),
    }
    .with_frames(f.frames);
    run_once(&wf, &cal, f.seed)
}

fn staging_value(m: &RunMetrics) -> serde_json::Value {
    serde_json::from_str(&serde_json::to_string(&m.staging).expect("staging json"))
        .expect("staging value")
}

/// DYAD and XFS reproduce the before-overhaul makespans bit-for-bit;
/// Lustre stays within a float-ulp-scale tolerance; staging counters
/// match exactly for every case.
#[test]
fn results_match_before_overhaul_fixtures() {
    for f in parse(BEFORE) {
        let m = run(&f);
        let got = m.makespan.nanos();
        match f.solution {
            "lustre" => {
                let rel = (got as f64 - f.makespan_ns as f64).abs() / f.makespan_ns as f64;
                assert!(
                    rel <= LUSTRE_TOL,
                    "lustre {}p makespan drifted: {} vs {} (rel {rel:.2e})",
                    f.pairs,
                    got,
                    f.makespan_ns
                );
            }
            _ => assert_eq!(
                got, f.makespan_ns,
                "{} {}p makespan changed vs before-overhaul capture",
                f.solution, f.pairs
            ),
        }
        assert_eq!(
            staging_value(&m),
            f.staging,
            "{} {}p staging counters changed",
            f.solution,
            f.pairs
        );
    }
}

/// The current model reproduces its own pinned capture exactly —
/// makespans, event counts and staging counters. A failure here means a
/// change altered simulation trajectories; re-pin deliberately or fix
/// the regression.
#[test]
fn results_match_pinned_fixtures_exactly() {
    for f in parse(PINNED) {
        let m = run(&f);
        assert_eq!(
            m.makespan.nanos(),
            f.makespan_ns,
            "{} {}p makespan changed vs pinned capture",
            f.solution,
            f.pairs
        );
        assert_eq!(
            m.events, f.events,
            "{} {}p event count changed vs pinned capture",
            f.solution, f.pairs
        );
        assert_eq!(
            staging_value(&m),
            f.staging,
            "{} {}p staging counters changed",
            f.solution,
            f.pairs
        );
    }
}

/// Same seed twice in one process ⇒ identical everything (guards against
/// accidental nondeterminism from map iteration order, interner state or
/// wake ordering).
#[test]
fn back_to_back_runs_are_identical() {
    let wf = WorkflowConfig::new(Solution::Dyad, 8, Placement::Split { pairs_per_node: 8 })
        .with_frames(6);
    let cal = Calibration::corona();
    let a = run_once(&wf, &cal, 7);
    let b = run_once(&wf, &cal, 7);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(staging_value(&a), staging_value(&b));
}
