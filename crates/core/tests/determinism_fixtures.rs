//! Same-seed determinism against pinned fixtures (PR 4).
//!
//! Two fixture files guard the hot-path overhaul:
//!
//! * `determinism_pr4.json` — captured on the code *before* the
//!   virtual-time bandwidth model and executor rework. DYAD and XFS
//!   makespans must match it bit-for-bit (the virtual-time model is
//!   algebraically identical for their flow patterns); Lustre is allowed
//!   a tiny relative drift because exact finish tags replace the old
//!   `FINISH_EPS` residual threshold in a float-sensitive interference
//!   mix. Staging lifecycle counters must match exactly everywhere.
//! * `determinism_pr4_pinned.json` — captured on the *current* model.
//!   Everything, including event counts, must match exactly; any change
//!   here means a code change silently altered trajectories.
//!
//! Run `hotpath --fixtures <path>` to regenerate after an intentional
//! trajectory change, and say so in the commit message.

use mdflow::prelude::*;

const BEFORE: &str = include_str!("fixtures/determinism_pr4.json");
const PINNED: &str = include_str!("fixtures/determinism_pr4_pinned.json");

/// Largest relative makespan drift tolerated for Lustre vs the
/// before-overhaul capture (observed ~1e-4 at 64 pairs).
const LUSTRE_TOL: f64 = 5e-4;

struct Fixture {
    solution: &'static str,
    pairs: u32,
    frames: u64,
    seed: u64,
    makespan_ns: u64,
    events: u64,
    staging: serde_json::Value,
}

fn parse(raw: &'static str) -> Vec<Fixture> {
    let v: serde_json::Value = serde_json::from_str(raw).expect("fixture json");
    v["fixtures"]
        .as_array()
        .expect("fixtures array")
        .iter()
        .map(|f| Fixture {
            solution: match f["solution"].as_str().expect("solution") {
                "dyad" => "dyad",
                "xfs" => "xfs",
                "lustre" => "lustre",
                other => panic!("unknown solution {other}"),
            },
            pairs: f["pairs"].as_u64().expect("pairs") as u32,
            frames: f["frames"].as_u64().expect("frames"),
            seed: f["seed"].as_u64().expect("seed"),
            makespan_ns: f["makespan_ns"].as_u64().expect("makespan_ns"),
            events: f["events"].as_u64().expect("events"),
            staging: f["staging"].clone(),
        })
        .collect()
}

fn run(f: &Fixture) -> RunMetrics {
    run_with_calibration(f, Calibration::corona())
}

fn run_with_calibration(f: &Fixture, cal: Calibration) -> RunMetrics {
    let wf = match f.solution {
        "dyad" => WorkflowConfig::new(
            Solution::Dyad,
            f.pairs,
            Placement::Split { pairs_per_node: 8 },
        ),
        "xfs" => WorkflowConfig::new(Solution::Xfs, f.pairs, Placement::SingleNode),
        "lustre" => WorkflowConfig::new(
            Solution::Lustre,
            f.pairs,
            Placement::Split { pairs_per_node: 8 },
        ),
        other => panic!("unknown solution {other}"),
    }
    .with_frames(f.frames);
    run_once(&wf, &cal, f.seed)
}

fn staging_value(m: &RunMetrics) -> serde_json::Value {
    serde_json::from_str(&serde_json::to_string(&m.staging).expect("staging json"))
        .expect("staging value")
}

/// DYAD and XFS reproduce the before-overhaul makespans bit-for-bit;
/// Lustre stays within a float-ulp-scale tolerance; staging counters
/// match exactly for every case.
#[test]
fn results_match_before_overhaul_fixtures() {
    for f in parse(BEFORE) {
        let m = run(&f);
        let got = m.makespan.nanos();
        match f.solution {
            "lustre" => {
                let rel = (got as f64 - f.makespan_ns as f64).abs() / f.makespan_ns as f64;
                assert!(
                    rel <= LUSTRE_TOL,
                    "lustre {}p makespan drifted: {} vs {} (rel {rel:.2e})",
                    f.pairs,
                    got,
                    f.makespan_ns
                );
            }
            _ => assert_eq!(
                got, f.makespan_ns,
                "{} {}p makespan changed vs before-overhaul capture",
                f.solution, f.pairs
            ),
        }
        assert_eq!(
            staging_value(&m),
            f.staging,
            "{} {}p staging counters changed",
            f.solution,
            f.pairs
        );
    }
}

/// The current model reproduces its own pinned capture exactly —
/// makespans, event counts and staging counters. A failure here means a
/// change altered simulation trajectories; re-pin deliberately or fix
/// the regression.
#[test]
fn results_match_pinned_fixtures_exactly() {
    for f in parse(PINNED) {
        let m = run(&f);
        assert_eq!(
            m.makespan.nanos(),
            f.makespan_ns,
            "{} {}p makespan changed vs pinned capture",
            f.solution,
            f.pairs
        );
        assert_eq!(
            m.events, f.events,
            "{} {}p event count changed vs pinned capture",
            f.solution, f.pairs
        );
        assert_eq!(
            staging_value(&m),
            f.staging,
            "{} {}p staging counters changed",
            f.solution,
            f.pairs
        );
    }
}

/// `TopologySpec::Flat` is the pinned-capture topology, and a leaf/spine
/// fabric that degenerates to a single leaf (radix ≥ node count,
/// oversubscription 1.0) builds no switch tiers at all — both must
/// replay the fig6 DYAD/XFS pinned schedules *bit-identically*:
/// makespans, event counts and staging counters. This is the PR 8
/// topology-plumbing guard: adding the topology axis must not perturb
/// any existing schedule.
#[test]
fn flat_and_degenerate_leaf_spine_replay_pinned_schedules() {
    let mut ls = Calibration::corona();
    ls.fabric = ls.fabric.with_topology(TopologySpec::LeafSpine {
        radix: 65_536,
        oversubscription: 1.0,
    });
    for f in parse(PINNED) {
        if f.solution == "lustre" {
            continue; // fig6 is DYAD vs XFS; lustre is covered above
        }
        for cal in [Calibration::corona(), ls.clone()] {
            let topo = cal.fabric.topology;
            let m = run_with_calibration(&f, cal);
            assert_eq!(
                m.makespan.nanos(),
                f.makespan_ns,
                "{} {}p makespan drifted under {topo:?}",
                f.solution,
                f.pairs
            );
            assert_eq!(
                m.events, f.events,
                "{} {}p event count drifted under {topo:?}",
                f.solution, f.pairs
            );
            assert_eq!(
                staging_value(&m),
                f.staging,
                "{} {}p staging counters drifted under {topo:?}",
                f.solution,
                f.pairs
            );
        }
    }
}

/// Same seed twice in one process ⇒ identical everything (guards against
/// accidental nondeterminism from map iteration order, interner state or
/// wake ordering).
#[test]
fn back_to_back_runs_are_identical() {
    let wf = WorkflowConfig::new(Solution::Dyad, 8, Placement::Split { pairs_per_node: 8 })
        .with_frames(6);
    let cal = Calibration::corona();
    let a = run_once(&wf, &cal, 7);
    let b = run_once(&wf, &cal, 7);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(staging_value(&a), staging_value(&b));
}

/// A forced one-shard unreplicated mesh replays the legacy single-broker
/// schedule *exactly*: same makespan, same event count, same staging
/// counters. Shard 0 sits on the legacy broker node and AM id, the mesh
/// client wraps the identical inner client (same RNG stream), and at
/// R=1 no replication machinery ever schedules an event — so the whole
/// mesh plane is provably pure routing on top of the old path.
#[test]
fn forced_one_shard_mesh_replays_the_legacy_schedule() {
    let cal = Calibration::corona();
    for pairs in [4u32, 8] {
        let legacy = WorkflowConfig::new(
            Solution::Dyad,
            pairs,
            Placement::Split { pairs_per_node: 8 },
        )
        .with_frames(6);
        let mut meshed = legacy.clone();
        meshed.kvs_force_mesh = true;
        let a = run_once(&legacy, &cal, 11);
        let b = run_once(&meshed, &cal, 11);
        assert_eq!(
            a.makespan, b.makespan,
            "{pairs}p: one-shard mesh drifted from the legacy makespan"
        );
        assert_eq!(
            a.events, b.events,
            "{pairs}p: one-shard mesh changed the event count"
        );
        assert_eq!(staging_value(&a), staging_value(&b));
        assert_eq!(b.kvs.shards, 1);
        assert_eq!(
            b.kvs.deltas_sent, 0,
            "{pairs}p: an unreplicated mesh shipped deltas"
        );
    }
}

/// Sharded and replicated schedules are byte-stable under parallel
/// campaign execution: a serial run and a `--jobs 8` run of the same
/// study produce byte-identical serialized reports, at 1 shard and at
/// 4 shards with replication.
#[test]
fn parallel_and_serial_mesh_campaigns_are_byte_identical() {
    let cal = Calibration::corona();
    for (shards, replication) in [(1u32, 1u32), (4, 2)] {
        let wf = WorkflowConfig::new(Solution::Dyad, 8, Placement::Split { pairs_per_node: 8 })
            .with_frames(6)
            .with_kvs_shards(shards)
            .with_kvs_replication(replication);
        let study = StudyConfig {
            workflow: wf,
            calibration: cal.clone(),
            repetitions: 4,
            seed: 42,
        };
        let serial = run_study_jobs(&study, 1).to_json();
        let parallel = run_study_jobs(&study, 8).to_json();
        assert_eq!(
            serial, parallel,
            "shards={shards} R={replication}: parallel execution drifted from serial"
        );
    }
}
