//! Streaming-backend determinism fixtures (PR 10).
//!
//! The SST-style streaming data plane must be as schedule-stable as the
//! rest of the harness: the bounded in-flight window, the KVS-ack
//! release path, and the M:N group spawn order are all required to be
//! pure functions of the seed. These tests pin that guarantee:
//!
//! * `workers = 1` replays freshly captured pinned schedules for
//!   fan-out ∈ {1, 4} on both a `Flat` fabric and a genuinely
//!   multi-leaf `LeafSpine` fabric — makespans and event counts
//!   exactly.
//! * `workers ∈ {1, 2, 4}` produce byte-identical serialized reports
//!   *and* byte-identical Chrome traces on the fan-out 4 scenario.
//! * `fanout = 1` is pinned against DYAD as a shape regression: same
//!   staging, same rendezvous, so per-frame consumption must stay in
//!   the same amortized regime.
//!
//! Re-pin the constants deliberately (and say so in the commit message)
//! only after an intentional trajectory change.

use mdflow::prelude::*;

/// Fig6-shaped scenario scaled for M:N groups: 16 groups, 12 frames.
const GROUPS: u32 = 16;
const FRAMES: u64 = 12;
const SEED: u64 = 2024;

/// Radix-4 leaf/spine at 2:1 oversubscription (same as the parallel-DES
/// fixtures): the fan-out 4 node count spans several leaves.
const MULTI_LEAF: TopologySpec = TopologySpec::LeafSpine {
    radix: 4,
    oversubscription: 2.0,
};

/// Pinned `(fanout, topo, makespan_ns, events)` captures for the
/// current model, workers = 1.
const PINS: &[(u32, Topo, u64, u64)] = &[
    (1, Topo::Flat, 11_471_638_645, 11_193),
    (4, Topo::Flat, 11_505_111_950, 23_581),
    (1, Topo::MultiLeaf, 11_471_647_501, 14_973),
    (4, Topo::MultiLeaf, 11_505_120_768, 31_637),
];

#[derive(Clone, Copy, PartialEq, Debug)]
enum Topo {
    Flat,
    MultiLeaf,
}

fn workflow(fanout: u32) -> WorkflowConfig {
    WorkflowConfig::new(
        Solution::Streaming,
        GROUPS,
        // 4 processes per node: even the fanout=1 shape (16+16
        // processes) then spans several radix-4 leaves.
        Placement::Split { pairs_per_node: 4 },
    )
    .with_frames(FRAMES)
    .with_fanout(fanout)
}

fn calibration(topo: Topo) -> Calibration {
    let mut cal = Calibration::corona();
    if topo == Topo::MultiLeaf {
        cal.fabric = cal.fabric.with_topology(MULTI_LEAF);
    }
    cal
}

/// Canonical serialized report for byte comparison: every field a
/// worker could perturb, in a fixed order (the parallel-DES shape plus
/// the streaming totals).
fn report_bytes(m: &RunMetrics) -> String {
    let staging = serde_json::to_string(&m.staging).expect("staging json");
    let streaming = serde_json::to_string(&m.streaming).expect("streaming json");
    format!(
        "{{\"makespan_ns\":{},\"events\":{},\"producers\":{},\"consumers\":{},\
         \"staging\":{staging},\"streaming\":{streaming},\
         \"kvs_commits\":{},\"kvs_lookups\":{},\"kvs_waits\":{}}}",
        m.makespan.nanos(),
        m.events,
        m.producers.len(),
        m.consumers.len(),
        m.kvs.commits,
        m.kvs.lookups,
        m.kvs.waits,
    )
}

/// `workers = 1` replays the pinned streaming schedules exactly, on the
/// degenerate single-shard `Flat` fabric and on a multi-leaf
/// `LeafSpine` fabric alike, at fan-out 1 and 4.
#[test]
fn streaming_workers1_replays_pinned_schedules() {
    for &(fanout, topo, makespan_ns, events) in PINS {
        let wf = workflow(fanout);
        let cal = calibration(topo);
        let snap = ClusterSnapshot::prepare(&wf, &cal, SEED ^ 0x7E3A);
        let shards = snap.sim_config(SEED).shards;
        match topo {
            Topo::Flat => assert_eq!(shards, 1, "fanout {fanout}: Flat must not shard"),
            Topo::MultiLeaf => assert!(
                shards > 2,
                "fanout {fanout}: leaf/spine should span several leaves, got {shards} shards"
            ),
        }
        let m = run_once(&wf, &cal, SEED);
        // Sanity: the topology actually ran M:N and every step landed.
        assert_eq!(m.producers.len(), GROUPS as usize);
        assert_eq!(m.consumers.len(), (GROUPS * fanout) as usize);
        assert_eq!(m.streaming.steps_published, u64::from(GROUPS) * FRAMES);
        assert_eq!(
            m.streaming.steps_consumed,
            u64::from(GROUPS * fanout) * FRAMES
        );
        assert_eq!(
            (m.makespan.nanos(), m.events),
            (makespan_ns, events),
            "fanout {fanout} under {topo:?}: schedule drifted from pinned capture \
             (got makespan {} events {})",
            m.makespan.nanos(),
            m.events,
        );
    }
}

/// Worker-pool identity on the fan-out 4 multi-leaf scenario: for
/// `workers ∈ {1, 2, 4}` the serialized report *and* the full Chrome
/// trace are byte-identical.
#[test]
fn streaming_worker_pool_reports_and_traces_are_byte_identical() {
    let wf = workflow(4);
    let cal = calibration(Topo::MultiLeaf);
    let mut baseline: Option<(String, String)> = None;
    for workers in [1usize, 2, 4] {
        let snap = ClusterSnapshot::prepare(&wf, &cal, SEED ^ 0x7E3A).with_workers(workers);
        assert!(
            snap.sim_config(SEED).shards > 2,
            "scenario must actually shard for the pool to engage"
        );
        let (metrics, _, tracer) = run_once_traced_snap(&snap, SEED, std::time::Instant::now());
        let report = report_bytes(&metrics);
        let trace = tracer.to_chrome_json();
        match &baseline {
            None => baseline = Some((report, trace)),
            Some((r1, t1)) => {
                assert_eq!(&report, r1, "workers={workers}: serialized report drifted");
                assert_eq!(&trace, t1, "workers={workers}: Chrome trace drifted");
            }
        }
    }
}

/// `fanout = 1` is the near-DYAD shape: same staging lifecycle, same
/// KVS rendezvous, one producer and one consumer per group. Its
/// per-frame consumption must stay in DYAD's amortized regime — within
/// 2× of DYAD's total and an order of magnitude below the coarse
/// manual-sync baselines (whose idle ≈ one frame period).
#[test]
fn streaming_fanout1_stays_in_dyads_regime() {
    let cal = calibration(Topo::Flat);
    let stream_wf = workflow(1);
    let dyad_wf = WorkflowConfig::new(
        Solution::Dyad,
        GROUPS,
        Placement::Split { pairs_per_node: 8 },
    )
    .with_frames(FRAMES);
    let stream = StudyReport::from_runs(&stream_wf, &[run_once(&stream_wf, &cal, SEED)]);
    let dyad = StudyReport::from_runs(&dyad_wf, &[run_once(&dyad_wf, &cal, SEED)]);
    let ratio = stream.consumption_total() / dyad.consumption_total();
    assert!(
        ratio < 2.0,
        "streaming fanout=1 consumption {} vs DYAD {} (ratio {ratio})",
        stream.consumption_total(),
        dyad.consumption_total()
    );
    // Both pipelines: makespans within 20% of each other.
    let mk = stream.makespan.mean / dyad.makespan.mean;
    assert!(
        (0.8..1.2).contains(&mk),
        "streaming fanout=1 makespan {} vs DYAD {} (ratio {mk})",
        stream.makespan.mean,
        dyad.makespan.mean
    );
    // And idle stays far below the frame period (no coarse barrier).
    assert!(
        stream.consumption_idle.mean < 0.1,
        "streaming idle {} should be amortized",
        stream.consumption_idle.mean
    );
}
