//! Campaign determinism regression: the parallel executor must be
//! invisible in the results. Serial (`jobs = 1`) and parallel
//! (`jobs ∈ {2, 8}`) execution of the same campaign must produce
//! byte-identical JSON reports — which, since a `StudyReport` embeds
//! every repetition's raw run breakdown, also pins the per-seed
//! schedules bit-for-bit. Likewise a warm-started run (snapshot +
//! recycled arena) must match a cold `run_once` exactly.

use mdflow::prelude::*;

/// A 3-solution × 2-model campaign, small enough to run three times in
/// a test but crossing every executor-relevant axis: KVS-backed DYAD,
/// PFS-backed Lustre, and the DYAD-over-PFS ablation (which needs both
/// service layers), on two frame sizes.
fn campaign() -> Campaign {
    let mut c = Campaign::new(
        vec![Solution::Dyad, Solution::Lustre, Solution::DyadOnPfs],
        2,
        Placement::Split { pairs_per_node: 8 },
    );
    c.models = vec![Model::Jac, Model::ApoA1];
    c.frames = 6;
    c.repetitions = 2;
    c.calibration = Calibration::quiet();
    c
}

#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let c = campaign();
    let (serial, serial_stats) = c.run_with_stats(1);
    assert_eq!(serial_stats.runs, 3 * 2 * 2);
    for jobs in [2, 8] {
        let (parallel, stats) = c.run_with_stats(jobs);
        assert_eq!(stats.jobs, jobs);
        assert_eq!(stats.runs, serial_stats.runs);
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "campaign diverged at jobs={jobs}"
        );
    }
}

#[test]
fn warm_start_matches_cold_start_per_run() {
    let cal = Calibration::quiet();
    for solution in [Solution::Dyad, Solution::Lustre, Solution::DyadOnPfs] {
        let wf =
            WorkflowConfig::new(solution, 2, Placement::Split { pairs_per_node: 8 }).with_frames(6);
        let seeds = [41u64, 42, 43];
        // Cold: every run pays full setup (and synthesizes its own
        // seed-specific template).
        let cold: Vec<_> = seeds.iter().map(|&s| run_once(&wf, &cal, s)).collect();
        // Warm: one shared snapshot, one recycled arena across runs.
        let snap = ClusterSnapshot::prepare(&wf, &cal, seeds[0] ^ 0x7E3A);
        let mut arena = RunArena::new();
        let warm: Vec<_> = seeds
            .iter()
            .map(|&s| run_once_warm(&snap, s, &mut arena).0)
            .collect();
        assert_eq!(
            StudyReport::from_runs(&wf, &cold).to_json(),
            StudyReport::from_runs(&wf, &warm).to_json(),
            "warm != cold for {solution:?}"
        );
    }
}

#[test]
fn run_study_jobs_matches_legacy_run_study() {
    let wf = WorkflowConfig::new(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 })
        .with_frames(6);
    let mut study = StudyConfig::paper(wf);
    study.repetitions = 3;
    study.calibration = Calibration::quiet();
    let legacy = run_study(&study).to_json();
    for jobs in [1, 4] {
        assert_eq!(
            run_study_jobs(&study, jobs).to_json(),
            legacy,
            "run_study_jobs diverged from run_study at jobs={jobs}"
        );
    }
}
