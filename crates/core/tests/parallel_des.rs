//! Parallel-DES determinism fixtures (PR 9).
//!
//! The sharded calendar and the staging worker pool are required to be
//! *behavior-invisible*: shard placement is a locality hint and window
//! staging is pure batching, so for any `(shard count, worker count)`
//! the executor must replay the exact serial schedule. These tests pin
//! that guarantee at the workflow level:
//!
//! * `workers = 1` replays freshly captured pinned schedules for both a
//!   `Flat` fabric (degenerate single shard) and a genuinely multi-leaf
//!   `LeafSpine` fabric (one calendar shard per leaf plus the
//!   cross-leaf/spine shard 0) — makespans and event counts exactly.
//! * `workers ∈ {1, 2, 4}` produce byte-identical serialized reports
//!   *and* byte-identical Chrome traces on the fig6-sized scenario.
//!
//! Re-pin the constants deliberately (and say so in the commit message)
//! only after an intentional trajectory change.

use mdflow::prelude::*;

/// Fig6-sized scenario: 64 producer/consumer pairs, 12 frames, the
/// PR 4 fixture seed.
const PAIRS: u32 = 64;
const FRAMES: u64 = 12;
const SEED: u64 = 2024;

/// Radix-4 leaf/spine at 2:1 oversubscription: small enough that the
/// fig6 node count spans several leaves, so the calendar genuinely
/// shards (shard 0 plus one shard per leaf).
const MULTI_LEAF: TopologySpec = TopologySpec::LeafSpine {
    radix: 4,
    oversubscription: 2.0,
};

/// Pinned `(makespan_ns, events)` captures for the current model,
/// workers = 1. The `Flat` rows must equal `determinism_pr4_pinned.json`
/// (the sharded executor degenerates to the serial calendar); the
/// `LeafSpine` rows were captured fresh on the multi-leaf fabric above.
const PINS: &[(Solution, Topo, u64, u64)] = &[
    (Solution::Dyad, Topo::Flat, 11_554_585_966, 41_835),
    (Solution::Xfs, Topo::Flat, 20_615_097_294, 10_159),
    (Solution::Dyad, Topo::MultiLeaf, 11_554_618_858, 59_043),
    // XFS is pinned to one node (it cannot span leaves), so Lustre —
    // whose split placement and PFS traffic cross the spine — covers the
    // second multi-leaf workload instead.
    (Solution::Lustre, Topo::MultiLeaf, 20_644_484_762, 106_448),
];

#[derive(Clone, Copy, PartialEq, Debug)]
enum Topo {
    Flat,
    MultiLeaf,
}

fn workflow(solution: Solution) -> WorkflowConfig {
    let placement = match solution {
        Solution::Xfs => Placement::SingleNode,
        _ => Placement::Split { pairs_per_node: 8 },
    };
    WorkflowConfig::new(solution, PAIRS, placement).with_frames(FRAMES)
}

fn calibration(topo: Topo) -> Calibration {
    let mut cal = Calibration::corona();
    if topo == Topo::MultiLeaf {
        cal.fabric = cal.fabric.with_topology(MULTI_LEAF);
    }
    cal
}

/// Canonical serialized report for byte comparison: every field a worker
/// could perturb, in a fixed order. Wall-clock timings are deliberately
/// excluded (they are nondeterministic by nature and `#[serde(skip)]`ed
/// out of persisted reports for the same reason).
fn report_bytes(m: &RunMetrics) -> String {
    let staging = serde_json::to_string(&m.staging).expect("staging json");
    format!(
        "{{\"makespan_ns\":{},\"events\":{},\"producers\":{},\"consumers\":{},\
         \"staging\":{staging},\"kvs_commits\":{},\"kvs_lookups\":{},\"kvs_waits\":{}}}",
        m.makespan.nanos(),
        m.events,
        m.producers.len(),
        m.consumers.len(),
        m.kvs.commits,
        m.kvs.lookups,
        m.kvs.waits,
    )
}

/// `workers = 1` on the sharded executor replays the pinned serial
/// schedules exactly — on the degenerate single-shard `Flat` fabric and
/// on a genuinely multi-leaf `LeafSpine` fabric alike.
#[test]
fn sharded_workers1_replays_pinned_schedules() {
    for &(solution, topo, makespan_ns, events) in PINS {
        let wf = workflow(solution);
        let cal = calibration(topo);
        let snap = ClusterSnapshot::prepare(&wf, &cal, SEED ^ 0x7E3A);
        let shards = snap.sim_config(SEED).shards;
        match topo {
            Topo::Flat => assert_eq!(shards, 1, "{solution:?}: Flat must not shard"),
            Topo::MultiLeaf => assert!(
                shards > 2,
                "{solution:?}: radix-4 leaf/spine should span several leaves, got {shards} shards"
            ),
        }
        let m = run_once(&wf, &cal, SEED);
        assert_eq!(
            (m.makespan.nanos(), m.events),
            (makespan_ns, events),
            "{solution:?} under {topo:?}: schedule drifted from pinned capture \
             (got makespan {} events {})",
            m.makespan.nanos(),
            m.events,
        );
    }
}

/// Worker-pool identity on the fig6-sized scenario: for `workers ∈
/// {1, 2, 4}` the serialized report *and* the full Chrome trace are
/// byte-identical. The trace pins every event timestamp and track, so
/// this is the strongest whole-workflow statement of the conservative
/// window design: staging never reorders, it only batches.
#[test]
fn worker_pool_reports_and_traces_are_byte_identical() {
    let wf = workflow(Solution::Dyad);
    let cal = calibration(Topo::MultiLeaf);
    let mut baseline: Option<(String, String)> = None;
    for workers in [1usize, 2, 4] {
        let snap = ClusterSnapshot::prepare(&wf, &cal, SEED ^ 0x7E3A).with_workers(workers);
        assert!(
            snap.sim_config(SEED).shards > 2,
            "scenario must actually shard for the pool to engage"
        );
        let (metrics, timings, tracer) =
            run_once_traced_snap(&snap, SEED, std::time::Instant::now());
        let report = report_bytes(&metrics);
        let trace = tracer.to_chrome_json();
        let load = timings.shard_load.expect("sharded run reports shard load");
        assert_eq!(load.fired_total, metrics.events);
        assert!(load.fired_max >= load.fired_total / u64::from(load.shards));
        match &baseline {
            None => baseline = Some((report, trace)),
            Some((r1, t1)) => {
                assert_eq!(&report, r1, "workers={workers}: serialized report drifted");
                assert_eq!(&trace, t1, "workers={workers}: Chrome trace drifted");
            }
        }
    }
}

/// The warm-start arena path honors the snapshot's worker count and
/// stays trajectory-identical to the cold path across recycles.
#[test]
fn warm_arena_with_workers_matches_cold_run() {
    let wf = workflow(Solution::Dyad);
    let cal = calibration(Topo::MultiLeaf);
    let cold = run_once(&wf, &cal, SEED);
    let snap = ClusterSnapshot::prepare(&wf, &cal, SEED ^ 0x7E3A).with_workers(2);
    let mut arena = RunArena::default();
    for round in 0..2 {
        let (m, _) = run_once_warm(&snap, SEED, &mut arena);
        assert_eq!(
            (m.makespan, m.events),
            (cold.makespan, cold.events),
            "round {round}: warm 2-worker run drifted from the cold serial run"
        );
    }
}
