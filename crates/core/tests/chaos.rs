//! Chaos suite (PR 5): every backend × every fault class terminates —
//! the workflow either completes or fails with typed, counted errors,
//! never a deadlock — and the whole fault pipeline is deterministic:
//! identical seeds give bit-identical fault schedules and bit-identical
//! reduced reports.
//!
//! The companion guarantee — that a *disabled* fault plan leaves runs
//! event-for-event identical to the pre-fault-layer code — is pinned by
//! `determinism_fixtures.rs` (its fixtures were captured before the
//! fault layer existed and every config there carries the default,
//! empty `FaultConfig`). The tests here add the complementary checks:
//! different disabled knobs are bit-identical, and an *armed* board
//! whose events all land after the workload keeps the same trajectory.

use mdflow::prelude::*;
use simcore::SimDuration;

/// Fixed seeds for the byte-stability sweeps (mirrored in CI).
const SEEDS: [u64; 3] = [11, 42, 20240807];

/// Pairs × frames of the small chaos workload.
const PAIRS: u32 = 2;
const FRAMES: u64 = 8;

fn ms(millis: u64) -> SimDuration {
    SimDuration::from_millis(millis)
}

/// The small workload every scenario runs: 2 pairs, 8 frames, quiet
/// testbed. XFS cannot split across nodes; the others use the paper's
/// producer/consumer split so faults can hit either side of the wire.
/// (For streaming the same split puts publishers on node 0 and every
/// subscriber on node 1, so the per-class fault sites stay valid.)
fn base(solution: Solution) -> WorkflowConfig {
    let placement = if solution == Solution::Xfs {
        Placement::SingleNode
    } else {
        Placement::Split { pairs_per_node: 8 }
    };
    WorkflowConfig::new(solution, PAIRS, placement).with_frames(FRAMES)
}

/// One scheduled scenario per fault class, all opening mid-workload
/// (the 8-frame JAC run spans ~6.6 s; windows open at 1 s and close
/// well before the retry budgets run out).
fn fault_classes(solution: Solution) -> Vec<(&'static str, FaultKind)> {
    // On the split placements node 0 runs producers (and the KVS
    // broker); node 1 runs consumers. Single-node XFS only has node 0.
    let peer = if solution == Solution::Xfs { 0 } else { 1 };
    vec![
        (
            "node_crash",
            FaultKind::NodeCrash {
                node: 0,
                down_for: ms(400),
            },
        ),
        (
            "nvme_degrade",
            FaultKind::NvmeDegrade {
                node: 0,
                factor: 8.0,
                duration: ms(600),
            },
        ),
        (
            "nvme_error",
            FaultKind::NvmeError {
                node: 0,
                duration: ms(300),
            },
        ),
        (
            "link_down",
            FaultKind::LinkDown {
                node: peer,
                duration: ms(400),
            },
        ),
        (
            "ost_degrade",
            FaultKind::OstDegrade {
                ost: 0,
                factor: 6.0,
                duration: ms(800),
            },
        ),
        ("mds_stall", FaultKind::MdsStall { duration: ms(300) }),
        (
            "kvs_delay",
            FaultKind::KvsDelay {
                delay: ms(150),
                duration: ms(400),
                broker: None,
            },
        ),
        // Scoped variant: addressed to broker 0 explicitly. Under the
        // legacy single broker (shard 0) this must behave like a global
        // delay; under a mesh it would slow only that shard.
        (
            "kvs_delay_scoped",
            FaultKind::KvsDelay {
                delay: ms(150),
                duration: ms(400),
                broker: Some(0),
            },
        ),
    ]
}

/// Run one scheduled fault scenario. Returning at all is the core
/// property: `run_once` panics on its internal hard stop if the
/// workload deadlocks.
fn run_scenario(solution: Solution, kind: FaultKind) -> RunMetrics {
    let wf = base(solution).with_faults(FaultConfig::scheduled(vec![FaultEvent {
        at: ms(1000),
        kind,
    }]));
    run_once(&wf, &Calibration::quiet(), 7)
}

/// Shared post-conditions for every scenario.
fn check_common(class: &str, solution: Solution, m: &RunMetrics) {
    assert!(
        m.faults.injected >= 1,
        "{solution:?}/{class}: fault window never opened"
    );
    assert!(
        m.makespan.as_secs_f64() > 0.0,
        "{solution:?}/{class}: empty run"
    );
    if class == "node_crash" {
        assert_eq!(m.faults.crashes, 1, "{solution:?}/{class}: crash count");
        assert_eq!(m.faults.restarts, 1, "{solution:?}/{class}: restart count");
    }
}

/// DYAD-only accounting: every frame of every pair ends in exactly one
/// typed state — consumed (acked to the staging evictor), observed lost
/// via a `FrameLost` tombstone, or given up with a typed failure.
/// Nothing is consumed twice and nothing silently vanishes.
fn check_dyad_accounting(class: &str, m: &RunMetrics) {
    let total = PAIRS as u64 * FRAMES;
    let accounted =
        m.staging.acks_published + m.faults.frames_lost_observed + m.faults.consume_failures;
    assert!(
        accounted >= total,
        "dyad/{class}: {accounted} of {total} frames accounted for \
         (acks {}, lost {}, failures {})",
        m.staging.acks_published,
        m.faults.frames_lost_observed,
        m.faults.consume_failures
    );
    assert!(
        m.staging.acks_published <= total,
        "dyad/{class}: {} acks for {total} frames — a frame was consumed twice",
        m.staging.acks_published
    );
}

#[test]
fn dyad_survives_every_fault_class() {
    for (class, kind) in fault_classes(Solution::Dyad) {
        let m = run_scenario(Solution::Dyad, kind);
        check_common(class, Solution::Dyad, &m);
        check_dyad_accounting(class, &m);
    }
}

#[test]
fn lustre_survives_every_fault_class() {
    for (class, kind) in fault_classes(Solution::Lustre) {
        let m = run_scenario(Solution::Lustre, kind);
        check_common(class, Solution::Lustre, &m);
    }
}

#[test]
fn xfs_survives_every_fault_class() {
    for (class, kind) in fault_classes(Solution::Xfs) {
        let m = run_scenario(Solution::Xfs, kind);
        check_common(class, Solution::Xfs, &m);
    }
}

/// Streaming accounting, the M:N generalization of the DYAD check:
/// every *step delivery* (steps × subscribers per group) ends consumed,
/// observed lost via a tombstone, or given up with a typed failure —
/// and no delivery happens twice.
fn check_streaming_accounting(class: &str, fanout: u32, m: &RunMetrics) {
    let total = u64::from(PAIRS * fanout) * FRAMES;
    let accounted =
        m.streaming.steps_consumed + m.faults.frames_lost_observed + m.faults.consume_failures;
    assert!(
        accounted >= total,
        "streaming/{class}: {accounted} of {total} deliveries accounted for \
         (consumed {}, lost {}, failures {})",
        m.streaming.steps_consumed,
        m.faults.frames_lost_observed,
        m.faults.consume_failures
    );
    assert!(
        m.streaming.steps_consumed <= total,
        "streaming/{class}: {} consumes for {total} deliveries — a step was consumed twice",
        m.streaming.steps_consumed
    );
}

/// The streaming backend survives the same per-class matrix, in the
/// genuinely M:N broadcast shape (1 publisher → 2 subscribers per
/// group) so the fault windows hit the window/ack machinery too.
#[test]
fn streaming_survives_every_fault_class() {
    const FANOUT: u32 = 2;
    for (class, kind) in fault_classes(Solution::Streaming) {
        let wf = base(Solution::Streaming)
            .with_fanout(FANOUT)
            .with_faults(FaultConfig::scheduled(vec![FaultEvent {
                at: ms(1000),
                kind,
            }]));
        let m = run_once(&wf, &Calibration::quiet(), 7);
        check_common(class, Solution::Streaming, &m);
        check_streaming_accounting(class, FANOUT, &m);
    }
}

/// The PR 10 headline A/B: a node crash takes out every subscriber of
/// every group mid-campaign while the publishers keep producing into a
/// small bounded window.
///
/// * `reclaim_on_crash = true`: each faulted window sweep drops ack
///   entries owed by the dead node, so publishers free-run through the
///   outage and the restarted subscribers drain retained steps.
/// * `reclaim_on_crash = false`: the window fills and head-of-line
///   stalls until the restart — strictly more publisher stall time and
///   never a shorter campaign.
///
/// Both legs terminate with full delivery accounting and are
/// byte-stable per seed.
#[test]
fn subscriber_crash_reclaim_beats_head_of_line_stall() {
    const FANOUT: u32 = 2;
    let cal = Calibration::quiet();
    let leg = |reclaim: bool| {
        base(Solution::Streaming)
            .with_fanout(FANOUT)
            // Window 1 and a 3 s outage: at the ~0.8 s frame period the
            // publishers produce ~4 steps while every subscriber is
            // down, so an unreclaimed window must head-of-line stall.
            .with_stream_window(1)
            .with_window_reclaim(reclaim)
            .with_faults(FaultConfig::scheduled(vec![FaultEvent {
                at: ms(1000),
                // Node 1 hosts every subscriber of both groups.
                kind: FaultKind::NodeCrash {
                    node: 1,
                    down_for: ms(3000),
                },
            }]))
    };
    let reclaim = run_once(&leg(true), &cal, 7);
    let stall = run_once(&leg(false), &cal, 7);
    for (name, m) in [("reclaim", &reclaim), ("stall", &stall)] {
        assert_eq!(m.faults.crashes, 1, "{name}: crash never fired");
        assert_eq!(m.faults.restarts, 1, "{name}: node never restarted");
        check_streaming_accounting(name, FANOUT, m);
    }
    assert!(
        reclaim.streaming.slots_reclaimed > 0,
        "reclaim leg never reclaimed a slot"
    );
    assert_eq!(
        stall.streaming.slots_reclaimed, 0,
        "stall leg must not reclaim"
    );
    assert!(
        reclaim.streaming.window_stall_secs < stall.streaming.window_stall_secs,
        "reclaim stalled {}s, head-of-line {}s — reclaim should stall less",
        reclaim.streaming.window_stall_secs,
        stall.streaming.window_stall_secs
    );
    assert!(
        reclaim.makespan <= stall.makespan,
        "reclaim makespan {:?} worse than head-of-line {:?}",
        reclaim.makespan,
        stall.makespan
    );
    // Byte-stability of both legs.
    for (name, wf, m) in [
        ("reclaim", leg(true), &reclaim),
        ("stall", leg(false), &stall),
    ] {
        let again = run_once(&wf, &cal, 7);
        assert_eq!(m.makespan, again.makespan, "{name}: makespan drifted");
        assert_eq!(m.events, again.events, "{name}: event count drifted");
    }
}

/// Same seed ⇒ byte-identical generated schedule; different seed ⇒ a
/// different one (the generator actually uses its seed).
#[test]
fn same_seed_gives_bit_identical_fault_schedules() {
    let horizon = SimDuration::from_secs_f64(10.0);
    for &seed in &SEEDS {
        let a = FaultConfig::chaos(seed, 3).build_plan(horizon, 4, 2, 0);
        let b = FaultConfig::chaos(seed, 3).build_plan(horizon, 4, 2, 0);
        assert!(!a.describe().is_empty(), "seed {seed}: empty plan");
        assert_eq!(
            a.describe(),
            b.describe(),
            "seed {seed}: schedule not reproducible"
        );
        let c = FaultConfig::chaos(seed ^ 1, 3).build_plan(horizon, 4, 2, 0);
        assert_ne!(
            a.describe(),
            c.describe(),
            "seed {seed}: schedule ignores its seed"
        );
    }
}

/// Generated chaos plans (all classes at once) terminate on every
/// backend, and rerunning the same seed reduces to a byte-identical
/// serialized report — fault counters, recovery split and all.
#[test]
fn same_seed_chaos_runs_produce_byte_identical_reports() {
    let cal = Calibration::quiet();
    for &seed in &SEEDS {
        for solution in [
            Solution::Dyad,
            Solution::Lustre,
            Solution::Xfs,
            Solution::Streaming,
        ] {
            let wf = base(solution).with_faults(FaultConfig::chaos(seed, 1));
            let a = run_once(&wf, &cal, seed);
            assert!(
                a.faults.injected > 0,
                "{solution:?} seed {seed}: generated plan injected nothing"
            );
            let b = run_once(&wf, &cal, seed);
            let ra = StudyReport::from_runs(&wf, &[a]).to_json();
            let rb = StudyReport::from_runs(&wf, &[b]).to_json();
            assert_eq!(ra, rb, "{solution:?} seed {seed}: report not byte-stable");
        }
    }
}

/// The PR 7 headline A/B: chaos kills one KVS broker shard mid-campaign.
///
/// * Replicated mesh (4 shards, R=2): every key the dead shard owned has
///   a live replica holding an acked copy, clients fail over, parked
///   waits are flushed and re-parked on replicas — the campaign heals
///   and completes with every frame consumed.
/// * Legacy single broker: the same crash takes the whole metadata
///   plane down. The workflow must *terminate* through the typed
///   failure path (counted produce/consume failures), never hang.
///
/// Both legs are asserted byte-stable per seed across the CI seed set.
#[test]
fn shard_kill_heals_replicated_mesh_but_terminates_single_broker() {
    let cal = Calibration::quiet();
    let total = PAIRS as u64 * FRAMES;
    for &seed in &SEEDS {
        // Leg A: sharded + replicated mesh, shard 1 dies at 1 s.
        let meshed = base(Solution::Dyad)
            .with_kvs_shards(4)
            .with_kvs_replication(2)
            .with_faults(FaultConfig::scheduled(vec![FaultEvent {
                at: ms(1000),
                kind: FaultKind::KvsShardCrash { shard: 1 },
            }]));
        let a = run_once(&meshed, &cal, seed);
        assert_eq!(
            a.faults.kvs_shard_crashes, 1,
            "seed {seed}: shard crash never fired"
        );
        assert_eq!(
            a.staging.acks_published, total,
            "seed {seed}: replicated mesh failed to heal — only {} of {total} \
             frames consumed (consume failures: {})",
            a.staging.acks_published, a.faults.consume_failures
        );
        assert_eq!(
            a.faults.consume_failures + a.faults.produce_failures,
            0,
            "seed {seed}: replicated mesh leaked typed failures"
        );
        assert!(
            a.kvs.deltas_sent > 0 && a.kvs.deltas_applied > 0,
            "seed {seed}: replication never shipped a delta"
        );
        let a2 = run_once(&meshed, &cal, seed);
        assert_eq!(
            a.makespan, a2.makespan,
            "seed {seed}: mesh leg not byte-stable"
        );
        assert_eq!(
            a.events, a2.events,
            "seed {seed}: mesh leg event count drifted"
        );

        // Leg B: legacy single broker (it *is* shard 0), same crash.
        let single = base(Solution::Dyad).with_faults(FaultConfig::scheduled(vec![FaultEvent {
            at: ms(1000),
            kind: FaultKind::KvsShardCrash { shard: 0 },
        }]));
        let b = run_once(&single, &cal, seed);
        assert!(
            b.faults.consume_failures + b.faults.produce_failures > 0,
            "seed {seed}: single-broker leg should terminate via typed failures"
        );
        assert!(
            b.staging.acks_published < total,
            "seed {seed}: single-broker leg completed despite a dead metadata plane"
        );
        let b2 = run_once(&single, &cal, seed);
        assert_eq!(
            b.makespan, b2.makespan,
            "seed {seed}: single-broker leg not byte-stable"
        );
        assert_eq!(
            b.events, b2.events,
            "seed {seed}: single-broker leg event count drifted"
        );
    }
}

/// Generated chaos plans that include the shard-crash class still
/// terminate on the replicated mesh, and the shard-crash knob leaves
/// non-mesh plans byte-identical (class 7 is appended, never interleaved).
#[test]
fn chaos_generator_with_shard_class_terminates_on_mesh() {
    let horizon = SimDuration::from_secs_f64(10.0);
    // Plan stability: n_kvs_shards = 0 reproduces the pre-mesh plan —
    // stripping shard-crash events from a shard-aware plan leaves the
    // exact event list a shard-free plan generates (class 7 draws come
    // after every pre-existing class, so earlier draws are untouched).
    for &seed in &SEEDS {
        let pre = FaultConfig::chaos(seed, 2).build_plan(horizon, 4, 2, 0);
        let with = FaultConfig::chaos(seed, 2).build_plan(horizon, 4, 2, 4);
        let kept: Vec<&FaultEvent> = with
            .events()
            .iter()
            .filter(|e| !matches!(e.kind, FaultKind::KvsShardCrash { .. }))
            .collect();
        assert_eq!(
            pre.events().iter().collect::<Vec<_>>(),
            kept,
            "seed {seed}: shard-crash class perturbed the existing plan"
        );
        assert!(
            with.len() > pre.len(),
            "seed {seed}: shard-crash class generated no events"
        );
    }
    // And a mesh run under the full generated plan terminates.
    let wf = base(Solution::Dyad)
        .with_kvs_shards(4)
        .with_kvs_replication(2)
        .with_faults(FaultConfig::chaos(SEEDS[0], 1));
    let m = run_once(&wf, &Calibration::quiet(), SEEDS[0]);
    assert!(
        m.faults.injected > 0,
        "generated mesh plan injected nothing"
    );
    check_dyad_accounting("mesh_chaos", &m);
}

/// A disabled `FaultConfig` — whatever its seed/window knobs say — must
/// leave the run bit-identical to one that never mentioned faults: same
/// makespan, same event count, same counters.
#[test]
fn disabled_fault_config_leaves_runs_bit_identical() {
    let cal = Calibration::quiet();
    for solution in [
        Solution::Dyad,
        Solution::Lustre,
        Solution::Xfs,
        Solution::Streaming,
    ] {
        let plain = base(solution);
        let disabled = base(solution).with_faults(FaultConfig {
            events_per_class: 0,
            seed: 0xDEAD_BEEF,
            mean_window_frac: 0.5,
            scheduled: Vec::new(),
        });
        let a = run_once(&plain, &cal, 3);
        let b = run_once(&disabled, &cal, 3);
        assert_eq!(a.makespan, b.makespan, "{solution:?}: makespan drifted");
        assert_eq!(a.events, b.events, "{solution:?}: event count drifted");
        assert_eq!(
            serde_json::to_string(&a.staging).unwrap(),
            serde_json::to_string(&b.staging).unwrap(),
            "{solution:?}: staging counters drifted"
        );
    }
}

/// An *armed* fault board whose only event lands an hour after the
/// workload finishes must not perturb the trajectory: the retrying
/// wrappers and recovery hooks are pure overhead-free pass-throughs
/// until a window actually opens.
#[test]
fn armed_board_with_out_of_window_plan_preserves_makespan() {
    let cal = Calibration::quiet();
    for solution in [
        Solution::Dyad,
        Solution::Lustre,
        Solution::Xfs,
        Solution::Streaming,
    ] {
        let plain = base(solution);
        let late = base(solution).with_faults(FaultConfig::scheduled(vec![FaultEvent {
            at: SimDuration::from_secs_f64(3600.0),
            kind: FaultKind::NodeCrash {
                node: 0,
                down_for: ms(100),
            },
        }]));
        let a = run_once(&plain, &cal, 5);
        let b = run_once(&late, &cal, 5);
        assert_eq!(
            a.makespan, b.makespan,
            "{solution:?}: armed-but-idle board changed the makespan"
        );
        assert_eq!(
            serde_json::to_string(&a.staging).unwrap(),
            serde_json::to_string(&b.staging).unwrap(),
            "{solution:?}: armed-but-idle board changed staging counters"
        );
        assert_eq!(
            b.faults.injected, 0,
            "{solution:?}: out-of-window event fired inside the run"
        );
    }
}
