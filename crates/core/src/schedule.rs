//! Variable-rate frame schedules.
//!
//! §III-A of the paper singles out workflows "where the data generation
//! rate varies significantly" as DYAD's sweet spot — but its evaluation
//! only runs fixed strides. This module adds the missing axis: a
//! [`FrameSchedule`] produces the inter-frame gap for every frame, and
//! the bursty-production experiment (`bench/src/bin/bursty.rs`) runs the
//! paper's comparison under realistic non-uniform output rates
//! (adaptive timesteps, event-triggered dumps, replayed traces).

use rand::rngs::StdRng;
use rand::RngExt;
use simcore::SimDuration;

/// How frame production is spaced in time.
#[derive(Debug, Clone)]
pub enum FrameSchedule {
    /// Fixed cadence (the paper's mode): every frame after `period`.
    Periodic {
        /// Inter-frame period.
        period: SimDuration,
    },
    /// Markov burst model: frames alternate between a fast "burst" gap
    /// and a slow "quiet" gap, switching state with the given
    /// probabilities per frame. Mean rate matches `Periodic` with
    /// period = `p_quiet·quiet + p_burst·burst` at stationarity.
    Bursty {
        /// Gap between frames inside a burst.
        burst_gap: SimDuration,
        /// Gap between frames while quiet.
        quiet_gap: SimDuration,
        /// P(stay in burst) per frame.
        burst_persistence: f64,
        /// P(enter burst from quiet) per frame.
        burst_entry: f64,
    },
    /// Replay an explicit trace of inter-frame gaps (cycled if shorter
    /// than the frame count) — for users with measured MD output traces.
    Trace {
        /// Recorded inter-frame gaps.
        gaps: Vec<SimDuration>,
    },
}

impl FrameSchedule {
    /// A periodic schedule from seconds.
    pub fn periodic_secs(period: f64) -> FrameSchedule {
        FrameSchedule::Periodic {
            period: SimDuration::from_secs_f64(period),
        }
    }

    /// Instantiate a stateful generator for one producer.
    pub fn generator(&self, rng: StdRng) -> ScheduleGen {
        ScheduleGen {
            schedule: self.clone(),
            rng,
            in_burst: false,
            idx: 0,
        }
    }

    /// The long-run mean inter-frame gap (used to rate-match consumers).
    pub fn mean_gap(&self) -> SimDuration {
        match self {
            FrameSchedule::Periodic { period } => *period,
            FrameSchedule::Bursty {
                burst_gap,
                quiet_gap,
                burst_persistence,
                burst_entry,
            } => {
                // Stationary distribution of the two-state chain.
                let leave = 1.0 - burst_persistence;
                let p_burst = if burst_entry + leave > 0.0 {
                    burst_entry / (burst_entry + leave)
                } else {
                    0.0
                };
                SimDuration::from_secs_f64(
                    p_burst * burst_gap.as_secs_f64() + (1.0 - p_burst) * quiet_gap.as_secs_f64(),
                )
            }
            FrameSchedule::Trace { gaps } => {
                if gaps.is_empty() {
                    SimDuration::ZERO
                } else {
                    let total: f64 = gaps.iter().map(|g| g.as_secs_f64()).sum();
                    SimDuration::from_secs_f64(total / gaps.len() as f64)
                }
            }
        }
    }
}

/// Stateful per-producer gap generator.
pub struct ScheduleGen {
    schedule: FrameSchedule,
    rng: StdRng,
    in_burst: bool,
    idx: usize,
}

impl ScheduleGen {
    /// The gap to sleep before producing the next frame.
    pub fn next_gap(&mut self) -> SimDuration {
        match &self.schedule {
            FrameSchedule::Periodic { period } => *period,
            FrameSchedule::Bursty {
                burst_gap,
                quiet_gap,
                burst_persistence,
                burst_entry,
            } => {
                let p: f64 = self.rng.random_range(0.0..1.0);
                self.in_burst = if self.in_burst {
                    p < *burst_persistence
                } else {
                    p < *burst_entry
                };
                if self.in_burst {
                    *burst_gap
                } else {
                    *quiet_gap
                }
            }
            FrameSchedule::Trace { gaps } => {
                if gaps.is_empty() {
                    return SimDuration::ZERO;
                }
                let g = gaps[self.idx % gaps.len()];
                self.idx += 1;
                g
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn periodic_is_constant() {
        let s = FrameSchedule::periodic_secs(0.82);
        let mut g = s.generator(StdRng::seed_from_u64(1));
        for _ in 0..5 {
            assert_eq!(g.next_gap(), SimDuration::from_secs_f64(0.82));
        }
        assert_eq!(s.mean_gap(), SimDuration::from_secs_f64(0.82));
    }

    #[test]
    fn trace_cycles() {
        let gaps = vec![SimDuration::from_millis(10), SimDuration::from_millis(20)];
        let s = FrameSchedule::Trace { gaps };
        let mut g = s.generator(StdRng::seed_from_u64(1));
        assert_eq!(g.next_gap().millis(), 10);
        assert_eq!(g.next_gap().millis(), 20);
        assert_eq!(g.next_gap().millis(), 10);
        assert_eq!(s.mean_gap().millis(), 15);
    }

    #[test]
    fn bursty_mixes_both_gaps_and_mean_matches_stationarity() {
        let s = FrameSchedule::Bursty {
            burst_gap: SimDuration::from_millis(10),
            quiet_gap: SimDuration::from_millis(100),
            burst_persistence: 0.8,
            burst_entry: 0.2,
        };
        let mut g = s.generator(StdRng::seed_from_u64(7));
        let mut fast = 0u32;
        let mut slow = 0u32;
        let mut total = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let gap = g.next_gap();
            total += gap.as_secs_f64();
            if gap.millis() == 10 {
                fast += 1;
            } else {
                slow += 1;
            }
        }
        assert!(fast > 0 && slow > 0, "both states must occur");
        // Stationary P(burst) = 0.2 / (0.2 + 0.2) = 0.5 -> mean 55 ms.
        let mean = total / n as f64;
        assert!((mean - 0.055).abs() < 0.003, "mean gap {mean}");
        assert!((s.mean_gap().as_secs_f64() - 0.055).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = FrameSchedule::Bursty {
            burst_gap: SimDuration::from_millis(1),
            quiet_gap: SimDuration::from_millis(9),
            burst_persistence: 0.7,
            burst_entry: 0.3,
        };
        let seq = |seed| {
            let mut g = s.generator(StdRng::seed_from_u64(seed));
            (0..50).map(|_| g.next_gap().nanos()).collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }
}
