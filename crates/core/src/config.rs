//! Experiment configuration: which data-management solution, which
//! molecular model, how many pairs, where they run.

use mdsim::Model;
use serde::Serialize;

/// The three data-management solutions of the paper, plus the ablation
/// variant that keeps DYAD's synchronization but stages data through the
/// shared parallel filesystem instead of node-local storage + RDMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Solution {
    /// DYAD middleware (node-local staging + KVS sync + RDMA).
    Dyad,
    /// Node-local XFS with manual synchronization (single node only).
    Xfs,
    /// Lustre-like parallel filesystem with manual synchronization.
    Lustre,
    /// Ablation: DYAD synchronization over Lustre storage (isolates the
    /// synchronization benefit from the node-local-storage benefit).
    DyadOnPfs,
    /// ADIOS2 SST-style streaming backend (the `streaming` crate):
    /// publisher-side step aggregation, subscriber groups, and a bounded
    /// in-flight window with ack-driven release, opening the M:N
    /// topology axis (`StreamingConfig`).
    Streaming,
}

impl Solution {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Solution::Dyad => "DYAD",
            Solution::Xfs => "XFS",
            Solution::Lustre => "Lustre",
            Solution::DyadOnPfs => "DYAD/PFS",
            Solution::Streaming => "SST",
        }
    }

    /// Does this solution need the parallel filesystem service nodes?
    pub fn needs_pfs(self) -> bool {
        matches!(self, Solution::Lustre | Solution::DyadOnPfs)
    }

    /// Does this solution need the KVS broker (rendezvous metadata)?
    pub fn needs_kvs(self) -> bool {
        matches!(
            self,
            Solution::Dyad | Solution::DyadOnPfs | Solution::Streaming
        )
    }
}

impl std::fmt::Display for Solution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where producers and consumers are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Placement {
    /// Every producer and consumer on one node (the paper's single-node
    /// DYAD/XFS configuration; pairs ≤ 4 because each pair needs 2 of
    /// the node's 8 GPUs).
    SingleNode,
    /// One process type per node (the paper's multi-node configuration):
    /// producers fill nodes at `pairs_per_node`, consumers fill an equal
    /// number of separate nodes.
    Split {
        /// Producers (or consumers) per node — 8 on Corona (one per
        /// GPU); the paper's model-scaling runs use 16 on 2 nodes.
        pairs_per_node: u32,
    },
}

/// Manual synchronization protocol for the XFS/Lustre baselines
/// (paper §III: MPI primitives, filesystem polling à la Pegasus, or
/// filesystem locks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ManualSync {
    /// The paper's coarse-grained barrier: producer and consumer fully
    /// serialize (the consumer's analytics completes before the next
    /// frame is computed).
    Coarse,
    /// Ablation: release the producer right after the read, overlapping
    /// analytics with the next frame's computation.
    Fine,
    /// Pegasus-style filesystem polling: the producer writes the frame
    /// plus a `.done` marker and never blocks; the consumer polls the
    /// marker's existence. Pipelined like DYAD, but every poll costs a
    /// metadata operation.
    Polling,
    /// Filesystem-lock synchronization (Lustre only): the producer
    /// writes under an exclusive DLM lock; the consumer takes a
    /// protected-read lock and probes for the frame, retrying until the
    /// write is visible. Pipelined, but every frame costs lock-service
    /// round trips.
    LockBased,
}

/// Staged-data lifecycle settings for the DYAD solution: how much
/// node-local NVMe the workflow may hold and what the evictor may do
/// when it fills (see the `staging` crate).
#[derive(Debug, Clone, Copy, Serialize, Default)]
pub struct StagingConfig {
    /// Per-node NVMe staging budget in bytes. `None` reproduces the
    /// paper's configuration: frames stay on NVMe for the whole run.
    pub budget_bytes: Option<u64>,
    /// What the background evictor may do with staged frames.
    #[serde(serialize_with = "retention_serde::serialize")]
    pub retention: staging::RetentionPolicy,
    /// Spill still-needed frames to the parallel filesystem under
    /// pressure instead of stalling the producer indefinitely. Adds the
    /// PFS service nodes to DYAD runs.
    pub spill_to_pfs: bool,
}

// RetentionPolicy is foreign; serialize via its stable name.
mod retention_serde {
    use serde::Serializer;
    pub fn serialize<S: Serializer>(r: &staging::RetentionPolicy, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(r.name())
    }
}

/// Topology axis of the streaming backend ([`Solution::Streaming`]):
/// each "pair" becomes a *group* of either 1 publisher → `fanout`
/// subscribers, or `fanin` publishers → 1 reducer (a binary reduction
/// tree). `fanout == fanin == 1` is the near-DYAD 1:1 shape.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StreamingConfig {
    /// Subscribers per group (1 producer → K analytics consumers).
    pub fanout: u32,
    /// Publishers per group (K producers → 1 reducer). Mutually
    /// exclusive with `fanout > 1`.
    pub fanin: u32,
    /// Bounded in-flight window: max unacked steps per publisher.
    pub window: u32,
    /// Frames aggregated per published step (SST step aggregation;
    /// also the reducer's sliding in-situ analysis window).
    pub agg_frames: u64,
    /// How a fan-out group shares the step sequence.
    #[serde(serialize_with = "group_serde::serialize")]
    pub group: streaming::GroupMode,
    /// Under faults, reclaim window slots held by crashed subscribers
    /// instead of head-of-line stalling until the restart.
    pub reclaim_on_crash: bool,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            fanout: 1,
            fanin: 1,
            window: 4,
            agg_frames: 1,
            group: streaming::GroupMode::Broadcast,
            reclaim_on_crash: true,
        }
    }
}

// GroupMode is foreign; serialize via its stable name.
mod group_serde {
    use serde::Serializer;
    pub fn serialize<S: Serializer>(g: &streaming::GroupMode, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(g.name())
    }
}

/// Deterministic fault-injection settings for a run. The default is
/// fully disabled: no fault board is built, no timers are armed, and the
/// run is event-for-event identical to one without the fault layer.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FaultConfig {
    /// Events per fault class in the generated chaos plan; `0` generates
    /// nothing (injection is still enabled if `scheduled` is set).
    pub events_per_class: u32,
    /// Seed for the generated plan. Deliberately independent of the run
    /// seed so one fault schedule can be replayed across repetitions.
    pub seed: u64,
    /// Mean fault-window length as a fraction of the expected workload
    /// duration (see [`faults::ChaosSpec::mean_window_frac`]).
    pub mean_window_frac: f64,
    /// Explicit events appended to the generated plan (exact-schedule
    /// experiments and tests). Not serialized: reports describe the plan
    /// through its seed/class knobs.
    #[serde(skip)]
    pub scheduled: Vec<faults::FaultEvent>,
}

impl FaultConfig {
    /// A generated chaos plan: `events_per_class` events of every fault
    /// class, windows averaging 10% of the workload duration.
    pub fn chaos(seed: u64, events_per_class: u32) -> Self {
        FaultConfig {
            events_per_class,
            seed,
            mean_window_frac: 0.1,
            scheduled: Vec::new(),
        }
    }

    /// An exact schedule, no generated events.
    pub fn scheduled(events: Vec<faults::FaultEvent>) -> Self {
        FaultConfig {
            scheduled: events,
            ..FaultConfig::default()
        }
    }

    /// Whether the run should build and arm a fault board at all.
    pub fn enabled(&self) -> bool {
        self.events_per_class > 0 || !self.scheduled.is_empty()
    }

    /// Expand into the concrete plan for a topology and horizon.
    /// `n_kvs_shards = 0` (any run without a KVS mesh) generates no
    /// shard-crash events and leaves the plan byte-identical to the
    /// pre-mesh generator.
    pub fn build_plan(
        &self,
        horizon: simcore::SimDuration,
        n_nodes: u32,
        n_osts: u32,
        n_kvs_shards: u32,
    ) -> faults::FaultPlan {
        let mut plan = if self.events_per_class > 0 {
            faults::FaultPlan::generate(
                &faults::ChaosSpec {
                    horizon,
                    n_nodes,
                    n_osts,
                    n_kvs_shards,
                    events_per_class: self.events_per_class as f64,
                    mean_window_frac: self.mean_window_frac,
                },
                self.seed,
            )
        } else {
            faults::FaultPlan::empty()
        };
        for e in &self.scheduled {
            plan.push(e.at, e.kind.clone());
        }
        plan
    }
}

/// One workflow configuration (one bar/point of a figure).
#[derive(Debug, Clone, Serialize)]
pub struct WorkflowConfig {
    /// Data-management solution under test.
    pub solution: Solution,
    /// Molecular model.
    #[serde(serialize_with = "model_serde::serialize")]
    pub model: Model,
    /// Producer-consumer pairs.
    pub pairs: u32,
    /// Process placement.
    pub placement: Placement,
    /// Steps between frames.
    pub stride: u64,
    /// Frames per pair (the paper uses 128).
    pub frames: u64,
    /// Manual-sync granularity for the traditional baselines.
    pub manual_sync: ManualSync,
    /// Warm fast-path enabled for DYAD (ablation knob).
    pub dyad_warm_sync: bool,
    /// Staged-data lifecycle settings (DYAD/streaming only; ignored by
    /// the manual baselines, which manage their own storage).
    pub staging: StagingConfig,
    /// Streaming-backend topology settings (ignored by the other
    /// solutions).
    pub streaming: StreamingConfig,
    /// Deterministic fault-injection plan (disabled by default).
    pub faults: FaultConfig,
    /// KVS metadata-plane shards (`--kvs-shards N`). 1 = the legacy
    /// single broker; >1 partitions the frame namespace across N
    /// brokers by rendezvous hash (DYAD solutions only).
    pub kvs_shards: u32,
    /// KVS replication factor (`--kvs-replication R`). 1 = unreplicated;
    /// R>1 synchronously replicates every commit to the key's top-R
    /// shards as causally-ordered deltas, enabling shard failover.
    pub kvs_replication: u32,
    /// Test knob: run the mesh plane even at shards=1, R=1 (used by the
    /// determinism fixtures to prove a one-shard mesh reproduces the
    /// legacy single-broker schedule exactly).
    #[serde(skip)]
    pub kvs_force_mesh: bool,
    /// Optional variable-rate frame schedule (overrides the fixed
    /// stride-based cadence; see [`crate::schedule::FrameSchedule`]).
    #[serde(skip)]
    pub schedule: Option<crate::schedule::FrameSchedule>,
}

// Model is foreign; serialize via its name.
mod model_serde {
    use super::*;
    use serde::Serializer;
    pub fn serialize<S: Serializer>(m: &Model, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(m.name())
    }
}

impl WorkflowConfig {
    /// The paper's defaults: JAC at stride 880, 128 frames, coarse sync.
    pub fn new(solution: Solution, pairs: u32, placement: Placement) -> Self {
        WorkflowConfig {
            solution,
            model: Model::Jac,
            pairs,
            placement,
            stride: Model::Jac.stride(),
            frames: 128,
            manual_sync: ManualSync::Coarse,
            dyad_warm_sync: true,
            staging: StagingConfig::default(),
            streaming: StreamingConfig::default(),
            faults: FaultConfig::default(),
            kvs_shards: 1,
            kvs_replication: 1,
            kvs_force_mesh: false,
            schedule: None,
        }
    }

    /// Set the model *and* its Table II stride.
    pub fn with_model(mut self, model: Model) -> Self {
        self.model = model;
        self.stride = model.stride();
        self
    }

    /// Override the stride (frequency-scaling experiments).
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride;
        self
    }

    /// Override the frame count.
    pub fn with_frames(mut self, frames: u64) -> Self {
        self.frames = frames;
        self
    }

    /// Use a variable-rate frame schedule instead of the fixed stride.
    pub fn with_schedule(mut self, schedule: crate::schedule::FrameSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Bound the per-node NVMe staging budget (DYAD only).
    pub fn with_staging_budget(mut self, bytes: u64) -> Self {
        self.staging.budget_bytes = Some(bytes);
        self
    }

    /// Choose the staging evictor's retention policy (DYAD only).
    pub fn with_retention(mut self, retention: staging::RetentionPolicy) -> Self {
        self.staging.retention = retention;
        self
    }

    /// Enable/disable spilling still-needed frames to the PFS under
    /// staging pressure (DYAD only).
    pub fn with_spill(mut self, spill_to_pfs: bool) -> Self {
        self.staging.spill_to_pfs = spill_to_pfs;
        self
    }

    /// Attach a fault-injection plan (see [`FaultConfig`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Shard the KVS metadata plane across `shards` brokers
    /// (`--kvs-shards N`; DYAD solutions only).
    pub fn with_kvs_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "kvs_shards must be at least 1");
        self.kvs_shards = shards;
        self
    }

    /// Replicate every key to `r` shards with causal delta sync
    /// (`--kvs-replication R`; clamped to the shard count at run time).
    pub fn with_kvs_replication(mut self, r: u32) -> Self {
        assert!(r >= 1, "kvs_replication must be at least 1");
        self.kvs_replication = r;
        self
    }

    /// Set the streaming fan-out: 1 publisher → `k` subscribers per
    /// group ([`Solution::Streaming`] only).
    pub fn with_fanout(mut self, k: u32) -> Self {
        assert!(k >= 1, "fanout must be at least 1");
        self.streaming.fanout = k;
        self
    }

    /// Set the streaming fan-in: `k` publishers → 1 reducer per group
    /// with a binary reduction tree ([`Solution::Streaming`] only).
    pub fn with_fanin(mut self, k: u32) -> Self {
        assert!(k >= 1, "fanin must be at least 1");
        self.streaming.fanin = k;
        self
    }

    /// Bound the publisher's in-flight window to `w` unacked steps.
    pub fn with_stream_window(mut self, w: u32) -> Self {
        assert!(w >= 1, "window must admit at least 1 step");
        self.streaming.window = w;
        self
    }

    /// Aggregate `n` frames per published step.
    pub fn with_agg_frames(mut self, n: u64) -> Self {
        assert!(n >= 1, "steps must carry at least 1 frame");
        self.streaming.agg_frames = n;
        self
    }

    /// Choose how fan-out groups share the step sequence.
    pub fn with_group_mode(mut self, mode: streaming::GroupMode) -> Self {
        self.streaming.group = mode;
        self
    }

    /// Enable/disable window reclaim for crashed subscribers.
    pub fn with_window_reclaim(mut self, reclaim: bool) -> Self {
        self.streaming.reclaim_on_crash = reclaim;
        self
    }

    /// Whether this run uses the mesh metadata plane (any sharding or
    /// replication beyond the legacy single broker, or the forced-mesh
    /// test knob).
    pub fn kvs_mesh_enabled(&self) -> bool {
        self.solution.needs_kvs()
            && (self.kvs_shards > 1 || self.kvs_replication > 1 || self.kvs_force_mesh)
    }

    /// Mean seconds between frames for this configuration (the
    /// schedule's long-run mean when one is set).
    pub fn frame_period_secs(&self) -> f64 {
        match &self.schedule {
            Some(s) => s.mean_gap().as_secs_f64(),
            None => self.model.period_for_stride(self.stride),
        }
    }

    /// Number of compute nodes the placement needs, and the node indices
    /// of each pair's producer and consumer.
    pub fn placement_plan(&self) -> PlacementPlan {
        match self.placement {
            Placement::SingleNode => PlacementPlan {
                compute_nodes: 1,
                pair_nodes: (0..self.pairs).map(|_| (0, 0)).collect(),
            },
            Placement::Split { pairs_per_node } => {
                assert!(pairs_per_node >= 1);
                let per = pairs_per_node;
                let n_prod_nodes = self.pairs.div_ceil(per);
                let pair_nodes = (0..self.pairs)
                    .map(|p| {
                        let prod = p / per;
                        let cons = n_prod_nodes + p / per;
                        (prod, cons)
                    })
                    .collect();
                PlacementPlan {
                    compute_nodes: (2 * n_prod_nodes) as usize,
                    pair_nodes,
                }
            }
        }
    }

    /// Concrete M:N placement for [`Solution::Streaming`]: each of the
    /// `pairs` groups gets its publishers and subscribers, publishers
    /// filling the first nodes and subscribers the following ones (the
    /// same one-process-type-per-node discipline as
    /// [`WorkflowConfig::placement_plan`]).
    pub fn streaming_plan(&self) -> StreamPlacement {
        type NodeOf = Box<dyn Fn(u32) -> u32>;
        let s = &self.streaming;
        assert!(
            s.fanout == 1 || s.fanin == 1,
            "streaming groups are either 1→K (fanout) or K→1 (fanin), not K→K"
        );
        let pubs_per_group = s.fanin.max(1);
        let subs_per_group = if s.fanin > 1 { 1 } else { s.fanout.max(1) };
        let total_pubs = self.pairs * pubs_per_group;
        let total_subs = self.pairs * subs_per_group;
        let (pub_node, sub_node): (NodeOf, NodeOf) = match self.placement {
            Placement::SingleNode => (Box::new(|_| 0), Box::new(|_| 0)),
            Placement::Split { pairs_per_node } => {
                assert!(pairs_per_node >= 1);
                let per = pairs_per_node;
                let n_pub_nodes = total_pubs.div_ceil(per);
                (
                    Box::new(move |p| p / per),
                    Box::new(move |c| n_pub_nodes + c / per),
                )
            }
        };
        let mut groups = Vec::with_capacity(self.pairs as usize);
        for g in 0..self.pairs {
            let publishers = (0..pubs_per_group)
                .map(|l| pub_node(g * pubs_per_group + l))
                .collect();
            let subscribers = (0..subs_per_group)
                .map(|j| sub_node(g * subs_per_group + j))
                .collect();
            groups.push(StreamGroupPlacement {
                publishers,
                subscribers,
            });
        }
        let compute_nodes = match self.placement {
            Placement::SingleNode => 1,
            Placement::Split { pairs_per_node } => {
                (total_pubs.div_ceil(pairs_per_node) + total_subs.div_ceil(pairs_per_node)) as usize
            }
        };
        StreamPlacement {
            compute_nodes,
            groups,
        }
    }
}

/// Concrete placement: node indices are relative to the compute section
/// of the cluster (service nodes are appended after).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Compute nodes required.
    pub compute_nodes: usize,
    /// `(producer_node, consumer_node)` per pair.
    pub pair_nodes: Vec<(u32, u32)>,
}

/// One streaming group's node assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamGroupPlacement {
    /// Node of each publisher (1 for fan-out groups, K for fan-in).
    pub publishers: Vec<u32>,
    /// Node of each subscriber (K for fan-out groups, 1 reducer for
    /// fan-in).
    pub subscribers: Vec<u32>,
}

/// Concrete M:N placement for the streaming backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPlacement {
    /// Compute nodes required.
    pub compute_nodes: usize,
    /// Per-group publisher/subscriber nodes (`pairs` groups).
    pub groups: Vec<StreamGroupPlacement>,
}

/// A full study: one workflow configuration, repeated.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The workflow to run.
    pub workflow: WorkflowConfig,
    /// Repetitions (the paper runs every configuration 10 times).
    pub repetitions: u32,
    /// Base seed; repetition `r` runs with `seed + r`.
    pub seed: u64,
    /// Testbed parameters.
    pub calibration: crate::calibration::Calibration,
}

impl StudyConfig {
    /// Ten repetitions with the Corona calibration.
    pub fn paper(workflow: WorkflowConfig) -> Self {
        StudyConfig {
            workflow,
            repetitions: 10,
            seed: 0xD1AD,
            calibration: crate::calibration::Calibration::corona(),
        }
    }

    /// Fewer repetitions (for tests).
    pub fn with_repetitions(mut self, reps: u32) -> Self {
        self.repetitions = reps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_places_everyone_together() {
        let cfg = WorkflowConfig::new(Solution::Dyad, 4, Placement::SingleNode);
        let plan = cfg.placement_plan();
        assert_eq!(plan.compute_nodes, 1);
        assert!(plan.pair_nodes.iter().all(|&(p, c)| p == 0 && c == 0));
    }

    #[test]
    fn split_places_one_type_per_node() {
        let cfg = WorkflowConfig::new(Solution::Lustre, 16, Placement::Split { pairs_per_node: 8 });
        let plan = cfg.placement_plan();
        assert_eq!(plan.compute_nodes, 4); // 2 producer + 2 consumer nodes
        assert_eq!(plan.pair_nodes[0], (0, 2));
        assert_eq!(plan.pair_nodes[7], (0, 2));
        assert_eq!(plan.pair_nodes[8], (1, 3));
        assert_eq!(plan.pair_nodes[15], (1, 3));
        // Producers never share a node with consumers.
        for &(p, c) in &plan.pair_nodes {
            assert_ne!(p, c);
        }
    }

    #[test]
    fn fig7_largest_config_uses_64_nodes() {
        let cfg = WorkflowConfig::new(Solution::Dyad, 256, Placement::Split { pairs_per_node: 8 });
        assert_eq!(cfg.placement_plan().compute_nodes, 64);
    }

    #[test]
    fn with_model_updates_stride() {
        let cfg =
            WorkflowConfig::new(Solution::Dyad, 1, Placement::SingleNode).with_model(Model::Stmv);
        assert_eq!(cfg.stride, 28);
        assert!((cfg.frame_period_secs() - 0.82).abs() < 0.01);
    }

    #[test]
    fn solution_capabilities() {
        assert!(Solution::Lustre.needs_pfs());
        assert!(!Solution::Lustre.needs_kvs());
        assert!(Solution::Dyad.needs_kvs());
        assert!(!Solution::Dyad.needs_pfs());
        assert!(Solution::DyadOnPfs.needs_pfs());
        assert!(Solution::DyadOnPfs.needs_kvs());
    }
}
