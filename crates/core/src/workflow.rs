//! Producer and consumer process bodies — §IV-C's "point-to-point
//! MD-inspired workflow".
//!
//! A producer emulates an MD simulation: it sleeps for one stride of MD
//! steps (Table II durations, with jitter), serializes a frame, and
//! writes it through the configured data-management solution. A consumer
//! reads each frame, deserializes/validates it, and sleeps for its
//! analytics (the paper sets the analytics duration equal to the frame
//! period so producer and consumer are rate-matched).
//!
//! Region names match the paper's Caliper annotations so the Thicket
//! layer can reproduce Figures 9 and 10:
//!
//! * producers: `md_sim`, then `produce` → { `write_single_buf`,
//!   `explicit_sync` } for the manual baselines, or DYAD's
//!   `dyad_produce` tree;
//! * consumers: `consume` → { `explicit_sync`, `read_single_buf` } or
//!   DYAD's `dyad_consume` tree, then `analytics`.
//!
//! **Coarse-grained manual sync** (the paper's baseline protocol) fully
//! serializes each pair: the consumer waits for the write to complete
//! (its `explicit_sync` ≈ one frame period of idle time) and the
//! producer does not start the next stride until the consumer finished
//! its analytics. The producer's wait lives in the `serialized_wait`
//! region — *outside* `produce` — mirroring how the paper's production
//! time shows no significant idle while consumption idle dominates
//! (DESIGN.md §2 discusses this interpretation).

use std::rc::Rc;

use bytes::Bytes;
use dyad::{DyadConsumer, DyadError, DyadService, FrameLocation, FrameMeta};
use faults::FaultBoard;
use instrument::{Profile, Recorder};
use kvs::KvsHandle;
use localfs::LocalFs;
use mdsim::{FrameHeader, FrameTemplate, StepClock};
use pfs::{LdlmClient, LockMode, PfsClient};
use simcore::sync::{channel, Receiver, Sender};
use simcore::trace::Tracer;
use simcore::{Ctx, SimDuration};
use streaming::StreamAcker;
use transport::Payload;

use crate::config::ManualSync;
use crate::schedule::FrameSchedule;

/// Storage backend for the manual (XFS/Lustre) baselines.
#[derive(Clone)]
pub enum Storage {
    /// Node-local XFS-like filesystem.
    Local(LocalFs),
    /// Lustre-like parallel filesystem client.
    Pfs(PfsClient),
}

impl Storage {
    /// Write a frame rope to `path` (create, write segments, close).
    pub async fn write_frame(&self, path: &str, frame: Payload) {
        match self {
            Storage::Local(fs) => {
                let fd = fs.create(path).await.expect("create");
                for seg in frame {
                    fs.write_bytes(fd, seg).await.expect("write");
                }
                fs.close(fd).await.expect("close");
            }
            Storage::Pfs(c) => {
                let fd = c.create(path).await.expect("create");
                c.write_segments(fd, frame).await.expect("write");
                c.close(fd).await.expect("close");
            }
        }
    }

    /// Read the whole frame at `path` as a rope.
    pub async fn read_frame(&self, path: &str) -> Payload {
        match self {
            Storage::Local(fs) => {
                let fd = fs.open(path).await.expect("open");
                let data = fs.read_segments(fd).await.expect("read");
                let _ = fs.close(fd).await;
                data
            }
            Storage::Pfs(c) => {
                let fd = c.open(path).await.expect("open");
                let data = c.read_segments(fd).await.expect("read");
                let _ = c.close(fd).await;
                data
            }
        }
    }

    /// Make sure the parent directory exists (local fs only; the PFS
    /// namespace is flat).
    pub async fn ensure_dir(&self, dir: &str) {
        if let Storage::Local(fs) = self {
            let _ = fs.mkdir_p(dir).await;
        }
    }

    /// Probe whether `path` exists, charging one metadata operation (a
    /// `stat`, as a polling workflow manager would issue).
    pub async fn probe(&self, path: &str) -> bool {
        match self {
            Storage::Local(fs) => fs.stat(path).await.is_ok(),
            Storage::Pfs(c) => c.stat(path).await.is_ok(),
        }
    }

    /// Write an empty `.done` marker next to a frame (the Pegasus-style
    /// completion convention for polling synchronization).
    pub async fn write_marker(&self, path: &str) {
        let marker = format!("{path}.done");
        match self {
            Storage::Local(fs) => {
                let fd = fs.create(&marker).await.expect("marker create");
                fs.close(fd).await.expect("marker close");
            }
            Storage::Pfs(c) => {
                let fd = c.create(&marker).await.expect("marker create");
                c.close(fd).await.expect("marker close");
            }
        }
    }
}

/// Per-pair rendezvous used by the manual baselines: `ready` announces a
/// written frame; `done` releases the producer for the next stride.
pub struct PairSync {
    /// Producer side.
    pub ready_tx: Sender<u64>,
    /// Producer side.
    pub done_rx: Receiver<u64>,
    /// Consumer side.
    pub ready_rx: Receiver<u64>,
    /// Consumer side.
    pub done_tx: Sender<u64>,
}

/// Build the two channels for one pair.
pub fn pair_sync() -> PairSync {
    let (ready_tx, ready_rx) = channel();
    let (done_tx, done_rx) = channel();
    PairSync {
        ready_tx,
        done_rx,
        ready_rx,
        done_tx,
    }
}

/// Everything a producer process needs.
pub struct ProducerArgs {
    /// Simulation handle.
    pub ctx: Ctx,
    /// Pair index (path namespace).
    pub pair: u32,
    /// Frames to produce.
    pub frames: u64,
    /// MD stride (steps per frame).
    pub stride: u64,
    /// Per-step timing.
    pub clock: StepClock,
    /// Shared frame template for this run.
    pub template: Rc<FrameTemplate>,
    /// CPU cost of serializing a frame.
    pub serialize_cpu: SimDuration,
    /// Launch offset (ensembles never start in lockstep; staggering
    /// reproduces the phase spread a real job launcher produces).
    pub start_offset: SimDuration,
    /// Optional Chrome-trace sink (disabled by default).
    pub tracer: Tracer,
    /// Optional variable-rate schedule (overrides `stride` × `clock`).
    pub schedule: Option<FrameSchedule>,
    /// Fault board when injection is armed for this run. `None` keeps
    /// the process body byte-identical to the fault-free build.
    pub faults: Option<FaultBoard>,
    /// The compute-node index this process runs on (fault freezes).
    pub node: u32,
}

/// The per-frame MD-phase duration: the variable-rate schedule when one
/// is set, otherwise one jittered stride of Table II steps.
fn md_phase(
    args: &ProducerArgs,
    gen: &mut Option<crate::schedule::ScheduleGen>,
    rng: &mut rand::rngs::StdRng,
) -> SimDuration {
    match gen {
        Some(g) => g.next_gap(),
        None => SimDuration::from_secs_f64(args.clock.stride_secs(args.stride, rng)),
    }
}

/// Frame path for `(pair, frame)` in a run's namespace.
pub fn frame_path(pair: u32, frame: u64) -> String {
    format!("frames/p{pair:04}/f{frame:05}")
}

/// DLM lock resource name for `(pair, frame)`.
pub fn lock_path(pair: u32, frame: u64) -> String {
    format!("locks/p{pair:04}/f{frame:05}")
}

/// DYAD producer process. Returns its Caliper-style profile.
pub async fn producer_dyad(args: ProducerArgs, svc: Rc<DyadService>, rng_stream: u64) -> Profile {
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("producer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(rng_stream);
    let mut sched = args
        .schedule
        .as_ref()
        .map(|s| s.generator(args.ctx.rng(rng_stream ^ 0x5C4E)));
    args.ctx.sleep(args.start_offset).await;
    for frame in 0..args.frames {
        {
            let g = rec.region("md_sim");
            let d = md_phase(&args, &mut sched, &mut rng);
            args.ctx.sleep(d).await;
            g.end();
        }
        let payload = {
            let g = rec.region("serialize");
            args.ctx.sleep(args.serialize_cpu).await;
            let p = args.template.frame_segments(frame);
            g.end();
            p
        };
        match &args.faults {
            None => {
                svc.produce(&rec, &frame_path(args.pair, frame), payload)
                    .await;
            }
            Some(board) => {
                // Boxed so the (large, rarely-live) recovery state
                // machine doesn't inflate every fault-free producer task.
                Box::pin(produce_dyad_faulted(
                    &args, board, &svc, &rec, frame, payload, rng_stream,
                ))
                .await;
            }
        }
    }
    rec.finish()
}

/// One fault-tolerant DYAD produce. Device-error windows are absorbed
/// inside [`DyadService::try_produce`]; broker outages that outlast its
/// budget are absorbed here by re-running the (idempotent) produce with
/// backoff. Every fault window is finite by construction, so this
/// terminates; a frame that is truly unwritable is tombstoned by the
/// service and surfaces to consumers as a typed `FrameLost`.
async fn produce_dyad_faulted(
    args: &ProducerArgs,
    board: &FaultBoard,
    svc: &Rc<DyadService>,
    rec: &Recorder,
    frame: u64,
    payload: Payload,
    rng_stream: u64,
) {
    let policy = dyad::dyad_retry_policy();
    let mut frng = args.ctx.rng(rng_stream ^ 0xFA17);
    let mut outer = 0u32;
    loop {
        // A crashed node runs nothing: freeze until the restart.
        board.hold_until_up(args.node).await;
        match svc
            .try_produce(
                rec,
                &frame_path(args.pair, frame),
                payload.clone(),
                &policy,
                &mut frng,
            )
            .await
        {
            Ok(()) => break,
            Err(DyadError::Storage { .. }) => {
                // Retry budget exhausted and tombstone published.
                rec.annotate("produce_failures", 1.0);
                break;
            }
            Err(_) => {
                outer += 1;
                if outer >= 64 {
                    rec.annotate("produce_failures", 1.0);
                    break;
                }
                rec.annotate("produce_outer_retries", 1.0);
                let pause = policy.backoff(outer.min(9), &mut frng);
                args.ctx.sleep(pause).await;
            }
        }
    }
}

/// Manual-baseline producer process (XFS or Lustre).
///
/// `ldlm` must be provided when `mode` is [`ManualSync::LockBased`].
pub async fn producer_manual(
    args: ProducerArgs,
    storage: Storage,
    sync: (Sender<u64>, Receiver<u64>),
    mode: ManualSync,
    ldlm: Option<LdlmClient>,
    rng_stream: u64,
) -> Profile {
    let (ready_tx, mut done_rx) = sync;
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("producer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(rng_stream);
    let mut sched = args
        .schedule
        .as_ref()
        .map(|s| s.generator(args.ctx.rng(rng_stream ^ 0x5C4E)));
    args.ctx.sleep(args.start_offset).await;
    storage
        .ensure_dir(&format!("frames/p{:04}", args.pair))
        .await;
    for frame in 0..args.frames {
        if let Some(board) = &args.faults {
            // A crashed node runs nothing: freeze until the restart.
            board.hold_until_up(args.node).await;
        }
        {
            let g = rec.region("md_sim");
            let d = md_phase(&args, &mut sched, &mut rng);
            args.ctx.sleep(d).await;
            g.end();
        }
        let payload = {
            let g = rec.region("serialize");
            args.ctx.sleep(args.serialize_cpu).await;
            let p = args.template.frame_segments(frame);
            g.end();
            p
        };
        {
            let g = rec.region("produce");
            if mode == ManualSync::LockBased {
                let s = rec.region("explicit_sync");
                ldlm.as_ref()
                    .expect("LockBased needs an LDLM client")
                    .lock(&lock_path(args.pair, frame), LockMode::Exclusive)
                    .await;
                s.end();
            }
            {
                let w = rec.region("write_single_buf");
                storage
                    .write_frame(&frame_path(args.pair, frame), payload)
                    .await;
                w.end();
            }
            {
                // Announce availability. For the channel-based barrier
                // this is a cheap send; for polling it is the `.done`
                // marker write. The *wait* half (if any) is below.
                let s = rec.region("explicit_sync");
                match mode {
                    ManualSync::Polling => {
                        storage.write_marker(&frame_path(args.pair, frame)).await;
                    }
                    ManualSync::LockBased => {
                        ldlm.as_ref()
                            .expect("LockBased needs an LDLM client")
                            .unlock(&lock_path(args.pair, frame), LockMode::Exclusive)
                            .await;
                    }
                    ManualSync::Coarse | ManualSync::Fine => ready_tx.send(frame),
                }
                s.end();
            }
            g.end();
        }
        if matches!(mode, ManualSync::Coarse | ManualSync::Fine) {
            // Coarse/fine serialization: hold the next stride until the
            // consumer releases us. Deliberately not part of `produce`
            // (see module docs). Polling producers never block.
            let g = rec.region("serialized_wait");
            let released = done_rx.recv().await;
            assert_eq!(released, Some(frame), "pair sync out of step");
            g.end();
        }
    }
    rec.finish()
}

/// Everything a consumer process needs.
pub struct ConsumerArgs {
    /// Simulation handle.
    pub ctx: Ctx,
    /// Pair index.
    pub pair: u32,
    /// Frames to consume.
    pub frames: u64,
    /// Analytics duration per frame (the frame period).
    pub analytics: SimDuration,
    /// Relative jitter on the analytics duration.
    pub jitter: f64,
    /// RNG stream for the analytics jitter.
    pub rng_stream: u64,
    /// Launch offset (paired with the producer's).
    pub start_offset: SimDuration,
    /// Optional Chrome-trace sink (disabled by default).
    pub tracer: Tracer,
    /// Shared frame template (for validation).
    pub template: Rc<FrameTemplate>,
    /// CPU cost of deserializing a frame header.
    pub deserialize_cpu: SimDuration,
    /// Fault board when injection is armed for this run.
    pub faults: Option<FaultBoard>,
    /// The compute-node index this process runs on (fault freezes).
    pub node: u32,
}

/// One analytics-phase duration with jitter applied.
fn analytics_sleep(args: &ConsumerArgs, rng: &mut rand::rngs::StdRng) -> SimDuration {
    if args.jitter <= 0.0 {
        return args.analytics;
    }
    use rand::RngExt;
    let k: f64 = rng.random_range(1.0 - args.jitter..1.0 + args.jitter);
    args.analytics.mul_f64(k)
}

/// DYAD consumer process.
pub async fn consumer_dyad(args: ConsumerArgs, svc: Rc<DyadService>) -> Profile {
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("consumer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(args.rng_stream);
    args.ctx.sleep(args.start_offset).await;
    // Ack id must match what the runner registered on the producer
    // node's staging manager, or frames would never become retireable.
    let mut session: DyadConsumer = svc.consumer_with_id(&format!("c{}", args.pair));
    for frame in 0..args.frames {
        let data = match &args.faults {
            None => Some(session.consume(&rec, &frame_path(args.pair, frame)).await),
            // Boxed for the same reason as the producer: keep the
            // recovery state machine out of fault-free consumer tasks.
            Some(board) => {
                Box::pin(consume_dyad_faulted(
                    &args,
                    board,
                    &mut session,
                    &rec,
                    frame,
                ))
                .await
            }
        };
        // A typed loss has nothing to analyze; move to the next frame.
        let Some(data) = data else { continue };
        deserialize_and_validate(&args, &rec, &data, frame).await;
        {
            let g = rec.region("analytics");
            let d = analytics_sleep(&args, &mut rng);
            args.ctx.sleep(d).await;
            g.end();
        }
    }
    rec.finish()
}

/// One fault-tolerant DYAD consume. Dead-owner and broker-outage errors
/// from [`DyadConsumer::try_consume`] are retried here with backoff
/// (fault windows are finite); a `FrameLost` tombstone is terminal and
/// yields `None`, counted in the `frames_lost_observed` metric.
async fn consume_dyad_faulted(
    args: &ConsumerArgs,
    board: &FaultBoard,
    session: &mut DyadConsumer,
    rec: &Recorder,
    frame: u64,
) -> Option<Payload> {
    let policy = dyad::dyad_retry_policy();
    let mut frng = args.ctx.rng(args.rng_stream ^ 0xFA17 ^ frame);
    let mut outer = 0u32;
    loop {
        board.hold_until_up(args.node).await;
        match session
            .try_consume(rec, &frame_path(args.pair, frame))
            .await
        {
            Ok(data) => return Some(data),
            Err(DyadError::FrameLost { .. }) => {
                rec.annotate("frames_lost_observed", 1.0);
                return None;
            }
            Err(_) => {
                outer += 1;
                if outer >= 64 {
                    rec.annotate("consume_failures", 1.0);
                    return None;
                }
                rec.annotate("consume_outer_retries", 1.0);
                let pause = policy.backoff(outer.min(9), &mut frng);
                args.ctx.sleep(pause).await;
            }
        }
    }
}

/// Manual-baseline consumer process (XFS or Lustre).
pub async fn consumer_manual(
    args: ConsumerArgs,
    storage: Storage,
    sync: (Receiver<u64>, Sender<u64>),
    mode: ManualSync,
    ldlm: Option<LdlmClient>,
    poll_interval: SimDuration,
) -> Profile {
    let (mut ready_rx, done_tx) = sync;
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("consumer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(args.rng_stream);
    args.ctx.sleep(args.start_offset).await;
    for frame in 0..args.frames {
        if let Some(board) = &args.faults {
            board.hold_until_up(args.node).await;
        }
        let data = {
            let g = rec.region("consume");
            {
                // The manual barrier: wait until the producer has
                // written this frame. This is the idle time the paper
                // measures for XFS/Lustre consumption.
                let s = rec.region("explicit_sync");
                match mode {
                    ManualSync::Polling => {
                        let marker = format!("{}.done", frame_path(args.pair, frame));
                        let mut polls = 0f64;
                        while !storage.probe(&marker).await {
                            polls += 1.0;
                            args.ctx.sleep(poll_interval).await;
                        }
                        rec.annotate("sync_polls", polls);
                    }
                    ManualSync::LockBased => {
                        // Take the read lock, check the frame landed; if
                        // the producer has not even locked yet, back off
                        // and retry (the startup race every lock-based
                        // protocol has to handle).
                        let ldlm = ldlm.as_ref().expect("LockBased needs an LDLM client");
                        let lock = lock_path(args.pair, frame);
                        let mut retries = 0f64;
                        loop {
                            ldlm.lock(&lock, LockMode::ProtectedRead).await;
                            let present = storage.probe(&frame_path(args.pair, frame)).await;
                            ldlm.unlock(&lock, LockMode::ProtectedRead).await;
                            if present {
                                break;
                            }
                            retries += 1.0;
                            args.ctx.sleep(poll_interval).await;
                        }
                        rec.annotate("lock_retries", retries);
                    }
                    ManualSync::Coarse | ManualSync::Fine => {
                        let ready = ready_rx.recv().await;
                        assert_eq!(ready, Some(frame), "pair sync out of step");
                    }
                }
                s.end();
            }
            let r = rec.region("read_single_buf");
            let data = storage.read_frame(&frame_path(args.pair, frame)).await;
            r.end();
            g.end();
            data
        };
        deserialize_and_validate(&args, &rec, &data, frame).await;
        if mode == ManualSync::Fine {
            // Fine-grained ablation: release the producer before the
            // analytics so the next stride overlaps with it.
            done_tx.send(frame);
        }
        {
            let g = rec.region("analytics");
            let d = analytics_sleep(&args, &mut rng);
            args.ctx.sleep(d).await;
            g.end();
        }
        if mode == ManualSync::Coarse {
            // The paper's coarse-grained barrier: the producer stays
            // blocked until the consumer has completely finished.
            done_tx.send(frame);
        }
    }
    // Polling mode never uses the channel; drop it silently.
    drop(done_tx);
    rec.finish()
}

/// DYAD-sync-over-PFS ablation: producer writes through Lustre but
/// publishes availability through the KVS (no manual barrier).
pub async fn producer_dyad_on_pfs(
    args: ProducerArgs,
    storage: Storage,
    kvs: KvsHandle,
    owner: cluster::NodeId,
    rng_stream: u64,
) -> Profile {
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("producer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(rng_stream);
    let mut sched = args
        .schedule
        .as_ref()
        .map(|s| s.generator(args.ctx.rng(rng_stream ^ 0x5C4E)));
    args.ctx.sleep(args.start_offset).await;
    for frame in 0..args.frames {
        if let Some(board) = &args.faults {
            board.hold_until_up(args.node).await;
        }
        {
            let g = rec.region("md_sim");
            let d = md_phase(&args, &mut sched, &mut rng);
            args.ctx.sleep(d).await;
            g.end();
        }
        let payload = {
            let g = rec.region("serialize");
            args.ctx.sleep(args.serialize_cpu).await;
            let p = args.template.frame_segments(frame);
            g.end();
            p
        };
        let size = transport::payload_len(&payload);
        {
            let g = rec.region("dyad_produce");
            {
                let w = rec.region("dyad_prod_write");
                storage
                    .write_frame(&frame_path(args.pair, frame), payload)
                    .await;
                w.end();
            }
            {
                let c = rec.region("dyad_commit");
                let meta = FrameMeta {
                    owner,
                    size,
                    location: FrameLocation::Pfs,
                };
                kvs.commit(&frame_path(args.pair, frame), meta.encode())
                    .await;
                c.end();
            }
            g.end();
        }
    }
    rec.finish()
}

/// DYAD-sync-over-PFS ablation consumer.
pub async fn consumer_dyad_on_pfs(
    args: ConsumerArgs,
    storage: Storage,
    kvs: KvsHandle,
    warm_sync: bool,
) -> Profile {
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("consumer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(args.rng_stream);
    args.ctx.sleep(args.start_offset).await;
    let mut warmed = false;
    for frame in 0..args.frames {
        if let Some(board) = &args.faults {
            board.hold_until_up(args.node).await;
        }
        let path = frame_path(args.pair, frame);
        let data = {
            let g = rec.region("dyad_consume");
            {
                let f = rec.region("dyad_fetch");
                if warmed && warm_sync {
                    if kvs.lookup(&path).await.is_none() {
                        kvs.wait_key(&path).await;
                    }
                } else {
                    kvs.wait_key(&path).await;
                }
                warmed = true;
                f.end();
            }
            let r = rec.region("read_single_buf");
            let data = storage.read_frame(&path).await;
            r.end();
            g.end();
            data
        };
        deserialize_and_validate(&args, &rec, &data, frame).await;
        {
            let g = rec.region("analytics");
            let d = analytics_sleep(&args, &mut rng);
            args.ctx.sleep(d).await;
            g.end();
        }
    }
    rec.finish()
}

// ---------------------------------------------------------------------------
// Streaming (SST-style) process bodies
// ---------------------------------------------------------------------------

/// Streaming-group role shared by the publisher/subscriber bodies:
/// which group, its topology shape, and the step aggregation factor.
#[derive(Clone, Copy)]
pub struct StreamRole {
    /// Group index (the streaming analogue of a pair).
    pub group: u32,
    /// Delivery mode of a fan-out group.
    pub mode: streaming::GroupMode,
    /// Subscribers per fan-out group.
    pub fanout: u32,
    /// Publishers per fan-in group.
    pub fanin: u32,
    /// This publisher's leaf index within a fan-in group (0 otherwise).
    pub leaf: u32,
    /// MD frames aggregated into one published step.
    pub agg_frames: u64,
}

impl StreamRole {
    /// Steps each publisher of this group emits for `frames` MD frames.
    pub fn steps(&self, frames: u64) -> u64 {
        frames.div_ceil(self.agg_frames.max(1))
    }

    /// Logical step name for `(leaf, step)`; fan-in groups get a
    /// per-leaf namespace so every publisher owns its own sequence.
    pub fn step_name(&self, leaf: u32, step: u64) -> String {
        if self.fanin > 1 {
            format!("steps/g{:04}/l{leaf:02}/s{step:05}", self.group)
        } else {
            format!("steps/g{:04}/s{step:05}", self.group)
        }
    }

    /// The ackers whose consumption releases `step`'s window slot:
    /// every broadcast subscriber, exactly the round-robin assignee of
    /// a partitioned group, or the fan-in group's single reducer.
    pub fn step_ackers(&self, step: u64, group_ackers: &[StreamAcker]) -> Vec<StreamAcker> {
        if self.fanin > 1 || self.mode == streaming::GroupMode::Broadcast {
            return group_ackers.to_vec();
        }
        let a = streaming::partition_assignee(step, self.fanout) as usize;
        vec![group_ackers[a].clone()]
    }
}

/// Streaming publisher process: the SST-style writer side of one group.
/// Each published step aggregates [`StreamRole::agg_frames`] MD frames;
/// the bounded in-flight window gates publication on subscriber acks.
pub async fn publisher_stream(
    args: ProducerArgs,
    svc: Rc<streaming::StreamService>,
    role: StreamRole,
    group_ackers: Vec<StreamAcker>,
    rng_stream: u64,
) -> Profile {
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("producer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(rng_stream);
    let mut sched = args
        .schedule
        .as_ref()
        .map(|s| s.generator(args.ctx.rng(rng_stream ^ 0x5C4E)));
    args.ctx.sleep(args.start_offset).await;
    let mut publisher = match &args.faults {
        Some(board) => svc.publisher_faulted(board.clone()),
        None => svc.publisher(),
    };
    let agg = role.agg_frames.max(1);
    let steps = role.steps(args.frames);
    let mut frame = 0u64;
    for step in 0..steps {
        let in_step = agg.min(args.frames - frame);
        {
            let g = rec.region("md_sim");
            for _ in 0..in_step {
                let d = md_phase(&args, &mut sched, &mut rng);
                args.ctx.sleep(d).await;
            }
            g.end();
        }
        let payload = {
            let g = rec.region("serialize");
            args.ctx
                .sleep(args.serialize_cpu.mul_f64(in_step as f64))
                .await;
            let mut p = Payload::new();
            for k in 0..in_step {
                p.extend(args.template.frame_segments(frame + k));
            }
            g.end();
            p
        };
        frame += in_step;
        let ackers = role.step_ackers(step, &group_ackers);
        let name = role.step_name(role.leaf, step);
        match &args.faults {
            None => {
                publisher.publish(&rec, &name, step, payload, &ackers).await;
            }
            Some(board) => {
                // Boxed like the DYAD bodies: keep the recovery state
                // machine out of fault-free publisher tasks.
                Box::pin(publish_stream_faulted(
                    &args,
                    board,
                    &mut publisher,
                    &rec,
                    &name,
                    step,
                    payload,
                    &ackers,
                    rng_stream,
                ))
                .await;
            }
        }
    }
    rec.finish()
}

/// One fault-tolerant streaming publish. Window stalls poll with crash
/// reclaim and device/broker errors are absorbed inside
/// [`streaming::StreamPublisher::try_publish`]; whatever outlasts its
/// budget is re-run here with backoff. A step that is truly unwritable
/// is tombstoned by the service and surfaces to subscribers as a typed
/// `StepLost`.
#[allow(clippy::too_many_arguments)]
async fn publish_stream_faulted(
    args: &ProducerArgs,
    board: &FaultBoard,
    publisher: &mut streaming::StreamPublisher,
    rec: &Recorder,
    name: &str,
    step: u64,
    payload: Payload,
    ackers: &[StreamAcker],
    rng_stream: u64,
) {
    let policy = streaming::stream_retry_policy();
    let mut frng = args.ctx.rng(rng_stream ^ 0xFA17 ^ step);
    let mut outer = 0u32;
    loop {
        // A crashed node runs nothing: freeze until the restart.
        board.hold_until_up(args.node).await;
        match publisher
            .try_publish(rec, name, step, payload.clone(), ackers, &policy, &mut frng)
            .await
        {
            Ok(()) => break,
            Err(streaming::StreamError::Storage { .. }) => {
                // Retry budget exhausted and tombstone published.
                rec.annotate("produce_failures", 1.0);
                break;
            }
            Err(_) => {
                outer += 1;
                if outer >= 64 {
                    rec.annotate("produce_failures", 1.0);
                    break;
                }
                rec.annotate("produce_outer_retries", 1.0);
                let pause = policy.backoff(outer.min(9), &mut frng);
                args.ctx.sleep(pause).await;
            }
        }
    }
}

/// Streaming fan-out subscriber process: member `sub_idx` of a group of
/// [`StreamRole::fanout`]. Broadcast members consume every step;
/// partitioned members consume their round-robin share, acking under
/// the group's shared session id.
pub async fn subscriber_stream(
    args: ConsumerArgs,
    svc: Rc<streaming::StreamService>,
    role: StreamRole,
    sub_idx: u32,
) -> Profile {
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("consumer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(args.rng_stream);
    args.ctx.sleep(args.start_offset).await;
    // Session id must match what the runner registered on the publisher
    // node's staging manager (and what the publisher's window waits on).
    let id = match role.mode {
        streaming::GroupMode::Broadcast => format!("g{}s{}", role.group, sub_idx),
        streaming::GroupMode::Partitioned => format!("g{}p", role.group),
    };
    let mut session = svc.subscriber(&id);
    let agg = role.agg_frames.max(1);
    let steps = role.steps(args.frames);
    for step in 0..steps {
        if !streaming::delivers_to(role.mode, step, sub_idx, role.fanout) {
            continue;
        }
        let name = role.step_name(0, step);
        let data = match &args.faults {
            None => Some(session.consume_step(&rec, &name).await),
            Some(board) => {
                Box::pin(consume_stream_faulted(
                    &args,
                    board,
                    &mut session,
                    &rec,
                    &name,
                    step,
                ))
                .await
            }
        };
        // A typed loss has nothing to analyze; move to the next step.
        let Some(data) = data else { continue };
        let first = step * agg;
        let in_step = agg.min(args.frames - first);
        deserialize_step(&args, &rec, &data, first, in_step).await;
        {
            let g = rec.region("analytics");
            let d = analytics_sleep(&args, &mut rng).mul_f64(in_step as f64);
            args.ctx.sleep(d).await;
            g.end();
        }
    }
    rec.finish()
}

/// One fault-tolerant streaming consume; `salt` keys the backoff-jitter
/// stream (step index, plus the leaf for reducers). A `StepLost`
/// tombstone is terminal and yields `None`, counted in the
/// `frames_lost_observed` metric.
async fn consume_stream_faulted(
    args: &ConsumerArgs,
    board: &FaultBoard,
    session: &mut streaming::StreamSubscriber,
    rec: &Recorder,
    name: &str,
    salt: u64,
) -> Option<Payload> {
    let policy = streaming::stream_retry_policy();
    let mut frng = args.ctx.rng(args.rng_stream ^ 0xFA17 ^ salt);
    let mut outer = 0u32;
    loop {
        board.hold_until_up(args.node).await;
        match session.try_consume_step(rec, name).await {
            Ok(data) => return Some(data),
            Err(streaming::StreamError::StepLost { .. }) => {
                rec.annotate("frames_lost_observed", 1.0);
                return None;
            }
            Err(_) => {
                outer += 1;
                if outer >= 64 {
                    rec.annotate("consume_failures", 1.0);
                    return None;
                }
                rec.annotate("consume_outer_retries", 1.0);
                let pause = policy.backoff(outer.min(9), &mut frng);
                args.ctx.sleep(pause).await;
            }
        }
    }
}

/// Streaming fan-in reducer: consumes one step from every leaf
/// publisher, folds the leaf payloads through the group's binary
/// reduction tree (one deserialize charge per pairwise merge, byte
/// conservation asserted at the root), then runs the analytics phase.
pub async fn reducer_stream(
    args: ConsumerArgs,
    svc: Rc<streaming::StreamService>,
    role: StreamRole,
) -> Profile {
    let rec = Recorder::traced(
        &args.ctx,
        args.tracer.clone(),
        &format!("consumer-{:03}", args.pair),
    );
    let mut rng = args.ctx.rng(args.rng_stream);
    args.ctx.sleep(args.start_offset).await;
    let mut session = svc.subscriber(&format!("g{}r", role.group));
    let tree = streaming::ReductionTree::new(role.fanin as usize);
    let agg = role.agg_frames.max(1);
    let steps = role.steps(args.frames);
    for step in 0..steps {
        let mut leaf_bytes: Vec<u64> = Vec::with_capacity(role.fanin as usize);
        let mut head: Option<Payload> = None;
        for leaf in 0..role.fanin {
            let name = role.step_name(leaf, step);
            let data = match &args.faults {
                None => Some(session.consume_step(&rec, &name).await),
                Some(board) => {
                    Box::pin(consume_stream_faulted(
                        &args,
                        board,
                        &mut session,
                        &rec,
                        &name,
                        step ^ (u64::from(leaf) << 32),
                    ))
                    .await
                }
            };
            let Some(data) = data else { continue };
            leaf_bytes.push(transport::payload_len(&data));
            if head.is_none() {
                head = Some(data);
            }
        }
        // Every leaf lost: nothing to reduce for this step index.
        let Some(head) = head else { continue };
        let first = step * agg;
        let in_step = agg.min(args.frames - first);
        deserialize_step(&args, &rec, &head, first, in_step).await;
        if leaf_bytes.len() == role.fanin as usize {
            let g = rec.region("stream_reduce");
            let total: u64 = leaf_bytes.iter().sum();
            assert_eq!(
                tree.combined_bytes(&leaf_bytes),
                total,
                "reduction dropped bytes (group {}, step {step})",
                role.group
            );
            args.ctx
                .sleep(args.deserialize_cpu.mul_f64(tree.merges() as f64))
                .await;
            rec.annotate("reduced_steps", 1.0);
            g.end();
        } else {
            // A lost leaf leaves a partial reduction — typed, visible.
            rec.annotate("partial_reductions", 1.0);
        }
        {
            let g = rec.region("analytics");
            let d = analytics_sleep(&args, &mut rng).mul_f64(in_step as f64);
            args.ctx.sleep(d).await;
            g.end();
        }
    }
    rec.finish()
}

/// Deserialize a step's leading frame header, charge the CPU cost, and
/// validate as strictly as the step shape allows: full payload equality
/// for single-frame steps, header identity for aggregated ones.
async fn deserialize_step(
    args: &ConsumerArgs,
    rec: &Recorder,
    data: &[Bytes],
    first_frame: u64,
    in_step: u64,
) {
    let g = rec.region("deserialize");
    args.ctx
        .sleep(args.deserialize_cpu.mul_f64(in_step as f64))
        .await;
    let header = FrameHeader::decode_segments(data).expect("valid step");
    assert_eq!(
        header.step, first_frame,
        "step head mismatch for group {}",
        args.pair
    );
    if in_step == 1 {
        assert!(
            args.template.validate(data, first_frame),
            "step payload corrupted in transit (frame {first_frame})"
        );
    }
    g.end();
}

/// Deserialize the header, charge the CPU cost, and assert the frame is
/// exactly what the producer serialized.
async fn deserialize_and_validate(args: &ConsumerArgs, rec: &Recorder, data: &[Bytes], frame: u64) {
    let g = rec.region("deserialize");
    args.ctx.sleep(args.deserialize_cpu).await;
    let header = FrameHeader::decode_segments(data).expect("valid frame");
    assert_eq!(header.step, frame, "frame mismatch for pair {}", args.pair);
    assert!(
        args.template.validate(data, frame),
        "frame payload corrupted in transit (pair {}, frame {frame})",
        args.pair
    );
    g.end();
}
