//! The device/protocol constants the simulated testbed is built from.
//!
//! One struct gathers every substrate's tuning parameters so an entire
//! experiment is reproducible from `(WorkflowConfig, Calibration, seed)`.
//! [`Calibration::corona`] is the default used by all paper-reproduction
//! benches; its values are chosen to be hardware-plausible for LLNL
//! Corona (see DESIGN.md §5) and to reproduce the paper's orderings.

use cluster::{FabricSpec, NodeSpec};
use dyad::DyadSpec;
use kvs::KvsSpec;
use localfs::LocalFsSpec;
use pfs::PfsSpec;
use simcore::SimDuration;
use transport::TransportSpec;

/// Full parameterization of the simulated testbed.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Compute-node hardware (NVMe, memory bandwidth, GPUs).
    pub node: NodeSpec,
    /// Interconnect (per-NIC bandwidth, latencies).
    pub fabric: FabricSpec,
    /// UCX-like transport protocol parameters.
    pub transport: TransportSpec,
    /// Flux-KVS broker parameters.
    pub kvs: KvsSpec,
    /// XFS-like node-local filesystem parameters.
    pub localfs: LocalFsSpec,
    /// Lustre-like parallel filesystem parameters.
    pub pfs: PfsSpec,
    /// DYAD middleware parameters.
    pub dyad: DyadSpec,
    /// Number of OSTs behind the Lustre-like filesystem.
    pub n_osts: usize,
    /// Relative jitter on MD step durations (desynchronizes initially
    /// aligned producers, as real step-time variance does).
    pub md_jitter: f64,
    /// CPU cost of deserializing a frame header on the consumer.
    pub deserialize_cpu: SimDuration,
    /// CPU cost of serializing a frame on the producer.
    pub serialize_cpu: SimDuration,
    /// Consumer launch delay as a fraction of the frame period: the
    /// paper's harness starts producers first, so the consumer's first
    /// (cold) synchronization waits only part of a period.
    pub consumer_launch_delay: f64,
    /// Poll interval for the [`crate::config::ManualSync::Polling`]
    /// protocol.
    pub manual_poll_interval: SimDuration,
    /// Staging evictor frees NVMe down to this fraction of the budget.
    pub staging_low_watermark: f64,
    /// Producers block above this fraction of the staging budget.
    pub staging_high_watermark: f64,
    /// Period of the background staging-evictor pass.
    pub staging_evict_interval: SimDuration,
}

impl Calibration {
    /// The Corona-flavoured default testbed.
    pub fn corona() -> Self {
        Calibration {
            node: NodeSpec::corona(),
            fabric: FabricSpec::infiniband_qdr(),
            transport: TransportSpec::default(),
            kvs: KvsSpec {
                // Flux broker RPCs measured in the tens of µs.
                service_time: SimDuration::from_micros(25),
                server_threads: 8,
                poll_interval: SimDuration::from_millis(1),
            },
            localfs: LocalFsSpec::default(),
            pfs: PfsSpec {
                // A busy, facility-shared filesystem. Small I/O is
                // absorbed by the client cache at near-wire rate
                // (burst); large I/O runs at the facility's sustained
                // per-OST-stream rate (62.5 MB/s × stripe count, i.e.
                // 0.25 GB/s at the default 4-way striping). Effective
                // (not peak) figures; see DESIGN.md §5.
                ost_write_bw: 2.0e9,
                ost_read_bw: 2.5e9,
                burst_cap: 2.0e9,
                sustained_cap: 0.0625e9,
                cache_threshold: 2 << 20,
                interference: 0.25,
                ..PfsSpec::default()
            },
            dyad: DyadSpec::default(),
            n_osts: 8,
            md_jitter: 0.02,
            deserialize_cpu: SimDuration::from_micros(5),
            serialize_cpu: SimDuration::from_micros(5),
            consumer_launch_delay: 0.5,
            manual_poll_interval: SimDuration::from_millis(10),
            staging_low_watermark: 0.7,
            staging_high_watermark: 0.9,
            staging_evict_interval: SimDuration::from_millis(200),
        }
    }

    /// A quiet variant (no Lustre background interference) used by tests
    /// that assert exact orderings.
    pub fn quiet() -> Self {
        let mut c = Calibration::corona();
        c.pfs.interference = 0.0;
        c.md_jitter = 0.0;
        c
    }

    /// Sustained-vs-burst PFS figures for Lustre-specific tests.
    pub fn pfs_sustained_cap(&self) -> f64 {
        self.pfs.sustained_cap
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::corona()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corona_is_self_consistent() {
        let c = Calibration::corona();
        assert!(c.node.nvme_write_bw > 0.0);
        assert!(c.n_osts >= 1);
        assert!(c.pfs.interference >= 0.0 && c.pfs.interference < 1.0);
        assert!(c.md_jitter < 0.5);
        assert!(c.staging_low_watermark <= c.staging_high_watermark);
        assert!(c.staging_high_watermark <= 1.0);
    }

    #[test]
    fn quiet_disables_noise() {
        let c = Calibration::quiet();
        assert_eq!(c.pfs.interference, 0.0);
        assert_eq!(c.md_jitter, 0.0);
    }
}
