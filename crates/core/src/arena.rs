//! Warm-start machinery for campaign execution: per-point cluster
//! snapshots, per-worker run arenas, and collision-free run-seed
//! derivation.
//!
//! A cold [`crate::runner::run_once`] rebuilds everything from scratch:
//! the placement plan, the cluster spec, the fault plan, the frame
//! template (O(atoms) — ~30 MB of synthesis for STMV), and a fresh
//! executor with empty calendars. For a single run that is fine; for a
//! campaign of thousands of runs the setup tax dominates. This module
//! splits the per-run state into what is *shareable across runs of the
//! same sweep point* ([`ClusterSnapshot`]) and what is *recyclable
//! across consecutive runs on one worker* ([`RunArena`]):
//!
//! * [`ClusterSnapshot`] holds the simulation-independent setup: the
//!   workflow + calibration, the resolved topology (placement plan,
//!   node count, PFS service-node layout, cluster spec), the fault-board
//!   template (the pre-built deterministic [`FaultPlan`]), the shared
//!   frame template, and the per-pair staging registration keys. It is
//!   `Send + Sync` and shared by reference across workers. The live
//!   substrates (cluster, filesystems, services) are `Rc`-wired into one
//!   simulation and are rebuilt per run *from* the snapshot — rebuilding
//!   from precomputed specs is cheap; recomputing the specs (above all
//!   the template) is not.
//! * [`RunArena`] carries a recycled [`simcore::SimArena`] — the event
//!   calendar, slot slab, task map and wake buffers of the previous run,
//!   cleared with capacities kept — plus nothing else: interner tables
//!   are thread-local and warm up on their own per worker.
//!
//! Determinism: a warm run is trajectory-identical to a cold run with
//! the same seed. The arena resets every executor counter; the snapshot
//! only changes *when* setup work happens, not what the simulation
//! observes. The one intentional difference is the frame template's
//! payload bytes (one template per point instead of one per seed), which
//! never influence timing: service times depend on byte *counts*, and
//! consumers validate frames against the very template object that
//! produced them.

use serde::Serialize;

use crate::calibration::Calibration;
use crate::config::{PlacementPlan, Solution, StreamPlacement, WorkflowConfig};
use cluster::{ClusterSpec, NodeId};
use faults::FaultPlan;
use mdsim::FrameTemplate;
use simcore::{splitmix64, SimDuration};

/// Derive the seed for one run of a campaign.
///
/// The derivation is a pure function of `(base, point, rep)` — never of
/// thread identity or execution order — so parallel and serial campaign
/// execution hand every run the identical seed. It is also injective
/// for a fixed base (and `point`, `rep` below 2³²): `point` and `rep`
/// are packed into disjoint halves of a word and pushed through
/// [`splitmix64`], a bijection on `u64`, so no two runs of a campaign
/// can collide. Mixing the base through `splitmix64` first keeps
/// related bases (e.g. `seed` and `seed + 1`) from yielding related
/// grids.
pub fn derive_run_seed(base: u64, point: u64, rep: u64) -> u64 {
    debug_assert!(point < (1 << 32), "campaign point index exceeds 2^32");
    debug_assert!(rep < (1 << 32), "repetition index exceeds 2^32");
    splitmix64(splitmix64(base) ^ ((point << 32) | (rep & 0xFFFF_FFFF)))
}

/// Wall-clock split of one run: how long setup (building substrates
/// from the snapshot) took versus executing the simulation itself.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RunTimings {
    /// Seconds from run start until the workload was spawned and the
    /// event loop was ready to execute.
    pub setup_secs: f64,
    /// Seconds spent advancing the simulation and collecting results.
    pub sim_secs: f64,
    /// Calendar-shard load summary (worker-invariant counters only).
    /// Not serialized: host-facing diagnostics, kept out of anything
    /// that is byte-compared across runs.
    #[serde(skip)]
    pub shard_load: Option<instrument::ShardLoad>,
}

/// Reusable per-worker run state: the recycled executor arena. Keep one
/// per worker thread and pass it to every
/// [`crate::runner::run_once_warm`] call; the first run is cold, every
/// later run reuses the previous run's allocations.
#[derive(Default)]
pub struct RunArena {
    pub(crate) sim: Option<simcore::SimArena>,
}

impl RunArena {
    /// A fresh arena (first run through it pays cold-start cost).
    pub fn new() -> RunArena {
        RunArena::default()
    }
}

/// Everything about one sweep point that can be computed once and
/// shared, read-only, by every repetition — across worker threads.
/// See the module docs for the shareable/recyclable split.
pub struct ClusterSnapshot {
    /// The workflow this snapshot was prepared for.
    pub(crate) workflow: WorkflowConfig,
    /// Testbed parameters.
    pub(crate) calibration: Calibration,
    /// Resolved process placement.
    pub(crate) plan: PlacementPlan,
    /// Compute nodes (the placement plan's node count).
    pub(crate) n_compute: usize,
    /// Total nodes including PFS service nodes.
    pub(crate) n_total: usize,
    /// MDS + OST node ids, when the point needs a PFS.
    pub(crate) pfs_nodes: Option<(NodeId, Vec<NodeId>)>,
    /// The homogeneous cluster spec every run builds from.
    pub(crate) spec: ClusterSpec,
    /// Pre-built deterministic fault plan (the fault-board template);
    /// `None` when fault injection is disabled for this point.
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Shared frame payload template (cheap to clone per run).
    pub(crate) template: FrameTemplate,
    /// Per-pair staging registration keys `(frame_dir, consumer_id)`,
    /// non-empty only for DYAD.
    pub(crate) registrations: Vec<(String, String)>,
    /// Resolved M:N group placement, [`Solution::Streaming`] only.
    pub(crate) stream_plan: Option<StreamPlacement>,
    /// Streaming staging registrations `(publisher_node, step_dir,
    /// subscriber_id)`, one per subscriber session that must ack a
    /// group's steps before they can retire.
    pub(crate) stream_regs: Vec<(u32, String, String)>,
    /// Executor worker threads every run built from this snapshot uses
    /// (1 = classic single-threaded core). Like shard placement, worker
    /// count never changes the schedule.
    pub(crate) workers: usize,
}

impl ClusterSnapshot {
    /// Prepare the shareable setup for `wf` under `cal`. The template is
    /// synthesized from `template_seed`; for a cold single run pass
    /// `seed ^ 0x7E3A` to match the historical [`crate::runner::run_once`]
    /// behavior, for a campaign point any fixed seed works (payload
    /// bytes never affect timing).
    pub fn prepare(wf: &WorkflowConfig, cal: &Calibration, template_seed: u64) -> ClusterSnapshot {
        // Streaming placement is M:N per group, not pairwise; the pair
        // plan stays empty so the runner's pair loop no-ops and the
        // streaming spawn block takes over.
        let stream_plan = (wf.solution == Solution::Streaming).then(|| wf.streaming_plan());
        let plan = match &stream_plan {
            Some(sp) => PlacementPlan {
                compute_nodes: sp.compute_nodes,
                pair_nodes: Vec::new(),
            },
            None => wf.placement_plan(),
        };
        let n_compute = plan.compute_nodes;
        let mut n_total = n_compute;
        // The staged backends need the PFS service nodes too when
        // staging may spill.
        let needs_pfs = wf.solution.needs_pfs()
            || (matches!(wf.solution, Solution::Dyad | Solution::Streaming)
                && wf.staging.spill_to_pfs);
        let pfs_nodes = if needs_pfs {
            let mds = n_total as u32;
            let osts: Vec<NodeId> = (0..cal.n_osts as u32)
                .map(|i| NodeId(n_total as u32 + 1 + i))
                .collect();
            n_total += 1 + cal.n_osts;
            Some((NodeId(mds), osts))
        } else {
            None
        };
        let spec = ClusterSpec::homogeneous(n_total, cal.node, cal.fabric);
        let fault_plan = if wf.faults.enabled() {
            let horizon =
                SimDuration::from_secs_f64((wf.frames as f64 * wf.frame_period_secs()).max(1.0));
            // Generated faults target compute nodes only; service nodes
            // (MDS/OSTs) have their own fault classes. Scheduled events
            // may still name any node. Shard-crash events are generated
            // only when the run actually has a KVS mesh.
            let n_osts_for_plan = if needs_pfs { cal.n_osts as u32 } else { 0 };
            let n_shards_for_plan = if wf.kvs_mesh_enabled() {
                wf.kvs_shards
            } else {
                0
            };
            Some(wf.faults.build_plan(
                horizon,
                n_compute as u32,
                n_osts_for_plan,
                n_shards_for_plan,
            ))
        } else {
            None
        };
        let template = FrameTemplate::generate(wf.model, template_seed);
        let registrations = if wf.solution == Solution::Dyad {
            (0..wf.pairs)
                .map(|pair| {
                    (
                        format!("{}/frames/p{pair:04}", cal.dyad.managed_dir),
                        format!("c{pair}"),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        // Streaming retention contract: every subscriber id that acks a
        // group's steps is registered on the publisher's node, so the
        // evictor holds each step until the whole group acknowledged it.
        let stream_regs = match &stream_plan {
            Some(sp) => {
                let s = &wf.streaming;
                let mut regs: Vec<(u32, String, String)> = Vec::new();
                for (g, gp) in sp.groups.iter().enumerate() {
                    if s.fanin > 1 {
                        for (l, &pn) in gp.publishers.iter().enumerate() {
                            regs.push((
                                pn,
                                format!("{}/steps/g{g:04}/l{l:02}", streaming::DEFAULT_MANAGED_DIR),
                                format!("g{g}r"),
                            ));
                        }
                    } else {
                        let pn = gp.publishers[0];
                        let dir = format!("{}/steps/g{g:04}", streaming::DEFAULT_MANAGED_DIR);
                        match s.group {
                            streaming::GroupMode::Broadcast => {
                                for j in 0..gp.subscribers.len() {
                                    regs.push((pn, dir.clone(), format!("g{g}s{j}")));
                                }
                            }
                            streaming::GroupMode::Partitioned => {
                                regs.push((pn, dir, format!("g{g}p")));
                            }
                        }
                    }
                }
                regs
            }
            None => Vec::new(),
        };
        ClusterSnapshot {
            workflow: wf.clone(),
            calibration: cal.clone(),
            plan,
            n_compute,
            n_total,
            pfs_nodes,
            spec,
            fault_plan,
            template,
            registrations,
            stream_plan,
            stream_regs,
            workers: 1,
        }
    }

    /// Set the executor worker count for runs built from this snapshot.
    /// Reports and traces are byte-identical for any value; values above
    /// 1 only help when the host actually has spare cores.
    pub fn with_workers(mut self, workers: usize) -> ClusterSnapshot {
        self.workers = workers.max(1);
        self
    }

    /// Executor configuration for one run at `seed`: calendar shards and
    /// conservative-window lookahead derived from the snapshot's fabric
    /// topology (one shard per leaf plus cross-leaf shard 0; a flat
    /// fabric degenerates to the classic single shard), plus the
    /// snapshot's worker count.
    pub fn sim_config(&self, seed: u64) -> simcore::SimConfig {
        let fabric = &self.spec.fabric;
        simcore::SimConfig::new(seed)
            .with_shards(fabric.shard_count(self.n_total))
            .with_workers(self.workers)
            .with_lookahead(fabric.shard_lookahead())
    }

    /// The workflow this snapshot was prepared for.
    pub fn workflow(&self) -> &WorkflowConfig {
        &self.workflow
    }
}

// Snapshots are shared by reference across campaign workers; this fails
// to compile if any field regresses to thread-bound storage.
fn _assert_snapshot_is_shareable() {
    fn ok<T: Send + Sync>() {}
    ok::<ClusterSnapshot>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;

    #[test]
    fn derived_seeds_never_collide_within_a_campaign() {
        // Exhaustive over a larger grid than any real campaign's
        // (points × reps) product.
        let mut seen = std::collections::HashSet::new();
        for point in 0..256u64 {
            for rep in 0..32u64 {
                assert!(
                    seen.insert(derive_run_seed(0xCA3B, point, rep)),
                    "collision at point {point} rep {rep}"
                );
            }
        }
    }

    #[test]
    fn derived_seeds_are_order_independent() {
        let forward: Vec<u64> = (0..64)
            .flat_map(|p| (0..8).map(move |r| derive_run_seed(7, p, r)))
            .collect();
        let mut reversed: Vec<u64> = (0..64)
            .rev()
            .flat_map(|p| (0..8).rev().map(move |r| derive_run_seed(7, p, r)))
            .collect();
        reversed.reverse();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn snapshot_matches_runner_topology() {
        let cal = Calibration::corona();
        // Lustre: PFS nodes appended after the compute nodes.
        let wf = WorkflowConfig::new(Solution::Lustre, 8, Placement::Split { pairs_per_node: 8 });
        let snap = ClusterSnapshot::prepare(&wf, &cal, 1);
        assert_eq!(snap.n_compute, 2);
        assert_eq!(snap.n_total, 2 + 1 + cal.n_osts);
        let (mds, osts) = snap.pfs_nodes.as_ref().unwrap();
        assert_eq!(*mds, NodeId(2));
        assert_eq!(osts.len(), cal.n_osts);
        assert!(snap.registrations.is_empty());
        // DYAD without spill: no PFS nodes, one registration per pair.
        let wf = WorkflowConfig::new(Solution::Dyad, 4, Placement::SingleNode);
        let snap = ClusterSnapshot::prepare(&wf, &cal, 1);
        assert!(snap.pfs_nodes.is_none());
        assert_eq!(snap.n_total, snap.n_compute);
        assert_eq!(snap.registrations.len(), 4);
        assert!(snap.registrations[3].0.ends_with("p0003"));
        assert_eq!(snap.registrations[3].1, "c3");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Seed isolation: for any base seed, no two (point, rep)
            // pairs of a campaign-sized grid share a run seed, and the
            // derivation is a pure function (independent of the order
            // the executor claims units in).
            #[test]
            fn seed_isolation_holds_for_any_base(
                base in any::<u64>(),
                points in 1u64..64,
                reps in 1u64..16,
                shuffle_seed in any::<u64>(),
            ) {
                let mut units: Vec<(u64, u64)> = (0..points)
                    .flat_map(|p| (0..reps).map(move |r| (p, r)))
                    .collect();
                let in_order: Vec<u64> = units
                    .iter()
                    .map(|&(p, r)| derive_run_seed(base, p, r))
                    .collect();
                // No collisions across the whole campaign.
                let distinct: std::collections::HashSet<u64> =
                    in_order.iter().copied().collect();
                prop_assert_eq!(distinct.len(), in_order.len());
                // Re-deriving under a shuffled execution order yields the
                // same seed for every unit.
                let mut s = shuffle_seed | 1;
                for i in (1..units.len()).rev() {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    units.swap(i, (s as usize) % (i + 1));
                }
                for &(p, r) in &units {
                    prop_assert_eq!(
                        derive_run_seed(base, p, r),
                        in_order[(p * reps + r) as usize]
                    );
                }
            }
        }
    }
}
