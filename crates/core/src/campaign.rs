//! Declarative experiment campaigns: the cross-product of solutions ×
//! models × ensemble sizes × strides, run and reduced to a comparison
//! table. This is the downstream-user API for "my workflow looks like
//! X — which data-management solution should I pick?"
//!
//! ## Execution model
//!
//! Every campaign (and every [`run_study_jobs`] /
//! [`run_studies_jobs`] call) goes through one parallel executor:
//!
//! 1. each sweep point's shareable setup is computed once into a
//!    [`ClusterSnapshot`](crate::arena::ClusterSnapshot);
//! 2. the `(point, repetition)` units are flattened into a single work
//!    list and claimed off an atomic cursor by `jobs` worker threads;
//! 3. each worker owns a [`RunArena`](crate::arena::RunArena) and runs
//!    units warm-started through
//!    [`run_once_warm`](crate::runner::run_once_warm);
//! 4. results land in per-unit slots, so reduction order is the sweep
//!    order regardless of which worker finished which unit when.
//!
//! Determinism: every unit's seed is a pure function of
//! `(base, point, rep)` (see [`derive_run_seed`]), the simulation state
//! is rebuilt per run from the read-only snapshot, and arenas reset all
//! executor counters — so `jobs = 1` and `jobs = N` produce
//! byte-identical reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

use crate::arena::{derive_run_seed, ClusterSnapshot, RunArena};
use crate::calibration::Calibration;
use crate::config::{Placement, Solution, StudyConfig, WorkflowConfig};
use crate::report::StudyReport;
use crate::runner::{run_once_warm, RunMetrics};
use mdsim::Model;

/// Worker-thread count to use when the caller does not specify one: the
/// `MDFLOW_JOBS` environment variable if set (min 1), otherwise every
/// available core.
pub fn default_jobs() -> usize {
    std::env::var("MDFLOW_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(rayon::current_num_threads)
}

/// Aggregate wall-clock accounting for one executor invocation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CampaignStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Total simulation runs executed.
    pub runs: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_secs: f64,
    /// CPU seconds spent on setup (snapshot preparation plus per-run
    /// substrate builds), summed across workers.
    pub setup_secs: f64,
    /// CPU seconds spent advancing simulations, summed across workers.
    pub sim_secs: f64,
}

impl CampaignStats {
    /// Campaign throughput in runs per minute of wall-clock time.
    pub fn runs_per_minute(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.runs as f64 * 60.0 / self.wall_secs
        }
    }

    /// Fraction of per-run CPU time spent on setup rather than
    /// simulation — the quantity warm starting exists to shrink.
    pub fn setup_fraction(&self) -> f64 {
        let total = self.setup_secs + self.sim_secs;
        if total <= 0.0 {
            0.0
        } else {
            self.setup_secs / total
        }
    }
}

/// One executable sweep point: the study plus the explicit per-rep run
/// seeds (so legacy `seed + rep` studies and derived-seed campaigns go
/// through one code path).
pub(crate) struct ExecPoint {
    pub(crate) study: StudyConfig,
    pub(crate) seeds: Vec<u64>,
}

impl ExecPoint {
    /// A point using the historical study seeding (`study.seed + rep`).
    fn legacy(study: &StudyConfig) -> ExecPoint {
        ExecPoint {
            study: study.clone(),
            seeds: (0..study.repetitions as u64)
                .map(|rep| study.seed + rep)
                .collect(),
        }
    }
}

/// Run each point's repetitions across `jobs` workers and reduce them,
/// in sweep order, to study reports.
pub(crate) fn execute_points(
    points: Vec<ExecPoint>,
    jobs: usize,
) -> (Vec<StudyReport>, CampaignStats) {
    let jobs = jobs.max(1);
    let wall_started = Instant::now();
    // Shareable setup, once per point. Template seed mirrors the cold
    // path's `seed ^ 0x7E3A` for the first rep; payload bytes never
    // influence timing, so sharing one template across reps is safe.
    let snaps: Vec<ClusterSnapshot> = points
        .iter()
        .map(|ep| {
            ClusterSnapshot::prepare(
                &ep.study.workflow,
                &ep.study.calibration,
                ep.seeds.first().copied().unwrap_or(ep.study.seed) ^ 0x7E3A,
            )
        })
        .collect();
    let prep_secs = wall_started.elapsed().as_secs_f64();

    // Flatten point-major so reduction can walk units in order.
    let units: Vec<(usize, usize)> = points
        .iter()
        .enumerate()
        .flat_map(|(p, ep)| (0..ep.seeds.len()).map(move |r| (p, r)))
        .collect();
    let results: Vec<Mutex<Option<RunMetrics>>> = units.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let totals = Mutex::new((0.0_f64, 0.0_f64));

    let worker = || {
        let mut arena = RunArena::new();
        let (mut setup, mut sim) = (0.0_f64, 0.0_f64);
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(p, r)) = units.get(i) else { break };
            let (metrics, timings) = run_once_warm(&snaps[p], points[p].seeds[r], &mut arena);
            *results[i].lock().unwrap() = Some(metrics);
            setup += timings.setup_secs;
            sim += timings.sim_secs;
        }
        let mut t = totals.lock().unwrap();
        t.0 += setup;
        t.1 += sim;
    };
    if jobs == 1 {
        worker();
    } else {
        rayon::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|_| worker());
            }
        });
    }

    let mut collected: Vec<Vec<RunMetrics>> = points
        .iter()
        .map(|ep| Vec::with_capacity(ep.seeds.len()))
        .collect();
    for (slot, &(p, _)) in results.iter().zip(&units) {
        collected[p].push(slot.lock().unwrap().take().expect("every unit ran"));
    }
    let reports = points
        .iter()
        .zip(&collected)
        .map(|(ep, runs)| StudyReport::from_runs(&ep.study.workflow, runs))
        .collect();
    let (setup_secs, sim_secs) = *totals.lock().unwrap();
    let stats = CampaignStats {
        jobs,
        runs: units.len(),
        wall_secs: wall_started.elapsed().as_secs_f64(),
        setup_secs: setup_secs + prep_secs,
        sim_secs,
    };
    (reports, stats)
}

/// [`crate::runner::run_study`] through the campaign executor: same
/// seeding (`study.seed + rep`), byte-identical report, but repetitions
/// fan out across `jobs` warm-started workers.
pub fn run_study_jobs(study: &StudyConfig, jobs: usize) -> StudyReport {
    let (mut reports, _) = execute_points(vec![ExecPoint::legacy(study)], jobs);
    reports.pop().expect("one study in, one report out")
}

/// Run a batch of studies through one executor invocation, sharing the
/// worker pool and arenas across all of them. Reports come back in
/// input order; the stats cover the whole batch.
pub fn run_studies_jobs(studies: &[StudyConfig], jobs: usize) -> (Vec<StudyReport>, CampaignStats) {
    execute_points(studies.iter().map(ExecPoint::legacy).collect(), jobs)
}

/// A sweep specification. Every listed axis is crossed with every other;
/// omitted strides fall back to each model's Table II default.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Solutions to compare.
    pub solutions: Vec<Solution>,
    /// Molecular models to cover.
    pub models: Vec<Model>,
    /// Ensemble sizes (producer-consumer pairs).
    pub pairs: Vec<u32>,
    /// Stride overrides (`None` = the model's Table II stride).
    pub strides: Vec<Option<u64>>,
    /// Process placement for every point.
    pub placement: Placement,
    /// Frames per pair.
    pub frames: u64,
    /// Repetitions per point.
    pub repetitions: u32,
    /// Testbed parameters.
    pub calibration: Calibration,
    /// Base seed.
    pub seed: u64,
}

impl Campaign {
    /// A minimal campaign comparing `solutions` on JAC at one ensemble
    /// size.
    pub fn new(solutions: Vec<Solution>, pairs: u32, placement: Placement) -> Campaign {
        Campaign {
            solutions,
            models: vec![Model::Jac],
            pairs: vec![pairs],
            strides: vec![None],
            placement,
            frames: 32,
            repetitions: 3,
            calibration: Calibration::corona(),
            seed: 0xCA3B,
        }
    }

    /// All workflow configurations the campaign will run.
    pub fn points(&self) -> Vec<WorkflowConfig> {
        let mut out = Vec::new();
        for &solution in &self.solutions {
            for &model in &self.models {
                for &pairs in &self.pairs {
                    for &stride in &self.strides {
                        let mut wf = WorkflowConfig::new(solution, pairs, self.placement)
                            .with_model(model)
                            .with_frames(self.frames);
                        if let Some(s) = stride {
                            wf = wf.with_stride(s);
                        }
                        out.push(wf);
                    }
                }
            }
        }
        out
    }

    /// Run every point on all available workers (see [`default_jobs`]).
    pub fn run(&self) -> CampaignResult {
        self.run_with_stats(default_jobs()).0
    }

    /// Run every point across `jobs` workers and report throughput
    /// accounting alongside the results.
    ///
    /// Run seeds are derived per `(point, repetition)` with
    /// [`derive_run_seed`], so every run of the campaign is seed-isolated
    /// and the result is independent of worker count and scheduling.
    pub fn run_with_stats(&self, jobs: usize) -> (CampaignResult, CampaignStats) {
        let points: Vec<ExecPoint> = self
            .points()
            .into_iter()
            .enumerate()
            .map(|(idx, wf)| {
                let mut study = StudyConfig::paper(wf);
                study.repetitions = self.repetitions;
                study.seed = self.seed;
                study.calibration = self.calibration.clone();
                let seeds = (0..self.repetitions as u64)
                    .map(|rep| derive_run_seed(self.seed, idx as u64, rep))
                    .collect();
                ExecPoint { study, seeds }
            })
            .collect();
        let (reports, stats) = execute_points(points, jobs);
        let rows = reports
            .into_iter()
            .map(|report| CampaignRow {
                label: row_label(&report.workflow),
                report,
            })
            .collect();
        (CampaignResult { rows }, stats)
    }
}

fn row_label(wf: &WorkflowConfig) -> String {
    format!(
        "{} / {} / {}p / stride {}",
        wf.solution.label(),
        wf.model.name(),
        wf.pairs,
        wf.stride
    )
}

/// One campaign point's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignRow {
    /// Human-readable point label.
    pub label: String,
    /// The reduced study.
    pub report: StudyReport,
}

/// All campaign outcomes, with comparison helpers.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignResult {
    /// One row per point, in sweep order.
    pub rows: Vec<CampaignRow>,
}

impl CampaignResult {
    /// Render a fixed-width comparison table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<38} {:>13} {:>13} {:>13} {:>11}\n",
            "configuration", "prod/frame", "cons move", "cons idle", "makespan"
        );
        for row in &self.rows {
            let r = &row.report;
            out.push_str(&format!(
                "{:<38} {:>10.3} ms {:>10.3} ms {:>10.3} ms {:>9.1} s\n",
                row.label,
                r.production_total() * 1e3,
                r.consumption_movement.mean * 1e3,
                r.consumption_idle.mean * 1e3,
                r.makespan.mean,
            ));
        }
        out
    }

    /// The point with the lowest total consumption time.
    pub fn best_consumption(&self) -> Option<&CampaignRow> {
        self.rows.iter().min_by(|a, b| {
            a.report
                .consumption_total()
                .total_cmp(&b.report.consumption_total())
        })
    }

    /// The point with the shortest makespan.
    pub fn best_makespan(&self) -> Option<&CampaignRow> {
        self.rows
            .iter()
            .min_by(|a, b| a.report.makespan.mean.total_cmp(&b.report.makespan.mean))
    }

    /// JSON for archival.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_cross_all_axes() {
        let mut c = Campaign::new(
            vec![Solution::Dyad, Solution::Lustre],
            4,
            Placement::Split { pairs_per_node: 8 },
        );
        c.models = vec![Model::Jac, Model::Stmv];
        c.pairs = vec![2, 4];
        c.strides = vec![None, Some(10)];
        let pts = c.points();
        assert_eq!(pts.len(), 2 * 2 * 2 * 2);
        // Default strides follow the model.
        assert!(pts
            .iter()
            .any(|p| p.model == Model::Stmv && p.stride == Model::Stmv.stride()));
        assert!(pts.iter().any(|p| p.stride == 10));
    }

    #[test]
    fn small_campaign_runs_and_ranks() {
        let mut c = Campaign::new(
            vec![Solution::Dyad, Solution::Lustre],
            2,
            Placement::Split { pairs_per_node: 8 },
        );
        c.frames = 6;
        c.repetitions = 1;
        c.calibration = Calibration::quiet();
        let result = c.run();
        assert_eq!(result.rows.len(), 2);
        let table = result.table();
        assert!(table.contains("DYAD"));
        assert!(table.contains("Lustre"));
        // DYAD wins both rankings in this configuration.
        assert!(result.best_consumption().unwrap().label.contains("DYAD"));
        assert!(result.best_makespan().unwrap().label.contains("DYAD"));
        // JSON is valid.
        let v: serde_json::Value = serde_json::from_str(&result.to_json()).unwrap();
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
    }
}
