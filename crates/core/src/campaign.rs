//! Declarative experiment campaigns: the cross-product of solutions ×
//! models × ensemble sizes × strides, run and reduced to a comparison
//! table. This is the downstream-user API for "my workflow looks like
//! X — which data-management solution should I pick?"

use serde::Serialize;

use crate::calibration::Calibration;
use crate::config::{Placement, Solution, StudyConfig, WorkflowConfig};
use crate::report::StudyReport;
use crate::runner::run_study;
use mdsim::Model;

/// A sweep specification. Every listed axis is crossed with every other;
/// omitted strides fall back to each model's Table II default.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Solutions to compare.
    pub solutions: Vec<Solution>,
    /// Molecular models to cover.
    pub models: Vec<Model>,
    /// Ensemble sizes (producer-consumer pairs).
    pub pairs: Vec<u32>,
    /// Stride overrides (`None` = the model's Table II stride).
    pub strides: Vec<Option<u64>>,
    /// Process placement for every point.
    pub placement: Placement,
    /// Frames per pair.
    pub frames: u64,
    /// Repetitions per point.
    pub repetitions: u32,
    /// Testbed parameters.
    pub calibration: Calibration,
    /// Base seed.
    pub seed: u64,
}

impl Campaign {
    /// A minimal campaign comparing `solutions` on JAC at one ensemble
    /// size.
    pub fn new(solutions: Vec<Solution>, pairs: u32, placement: Placement) -> Campaign {
        Campaign {
            solutions,
            models: vec![Model::Jac],
            pairs: vec![pairs],
            strides: vec![None],
            placement,
            frames: 32,
            repetitions: 3,
            calibration: Calibration::corona(),
            seed: 0xCA3B,
        }
    }

    /// All workflow configurations the campaign will run.
    pub fn points(&self) -> Vec<WorkflowConfig> {
        let mut out = Vec::new();
        for &solution in &self.solutions {
            for &model in &self.models {
                for &pairs in &self.pairs {
                    for &stride in &self.strides {
                        let mut wf = WorkflowConfig::new(solution, pairs, self.placement)
                            .with_model(model)
                            .with_frames(self.frames);
                        if let Some(s) = stride {
                            wf = wf.with_stride(s);
                        }
                        out.push(wf);
                    }
                }
            }
        }
        out
    }

    /// Run every point.
    pub fn run(&self) -> CampaignResult {
        let rows = self
            .points()
            .into_iter()
            .map(|wf| {
                let mut study = StudyConfig::paper(wf);
                study.repetitions = self.repetitions;
                study.seed = self.seed;
                study.calibration = self.calibration.clone();
                let report = run_study(&study);
                CampaignRow {
                    label: row_label(&report.workflow),
                    report,
                }
            })
            .collect();
        CampaignResult { rows }
    }
}

fn row_label(wf: &WorkflowConfig) -> String {
    format!(
        "{} / {} / {}p / stride {}",
        wf.solution.label(),
        wf.model.name(),
        wf.pairs,
        wf.stride
    )
}

/// One campaign point's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignRow {
    /// Human-readable point label.
    pub label: String,
    /// The reduced study.
    pub report: StudyReport,
}

/// All campaign outcomes, with comparison helpers.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignResult {
    /// One row per point, in sweep order.
    pub rows: Vec<CampaignRow>,
}

impl CampaignResult {
    /// Render a fixed-width comparison table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<38} {:>13} {:>13} {:>13} {:>11}\n",
            "configuration", "prod/frame", "cons move", "cons idle", "makespan"
        );
        for row in &self.rows {
            let r = &row.report;
            out.push_str(&format!(
                "{:<38} {:>10.3} ms {:>10.3} ms {:>10.3} ms {:>9.1} s\n",
                row.label,
                r.production_total() * 1e3,
                r.consumption_movement.mean * 1e3,
                r.consumption_idle.mean * 1e3,
                r.makespan.mean,
            ));
        }
        out
    }

    /// The point with the lowest total consumption time.
    pub fn best_consumption(&self) -> Option<&CampaignRow> {
        self.rows.iter().min_by(|a, b| {
            a.report
                .consumption_total()
                .total_cmp(&b.report.consumption_total())
        })
    }

    /// The point with the shortest makespan.
    pub fn best_makespan(&self) -> Option<&CampaignRow> {
        self.rows
            .iter()
            .min_by(|a, b| a.report.makespan.mean.total_cmp(&b.report.makespan.mean))
    }

    /// JSON for archival.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_cross_all_axes() {
        let mut c = Campaign::new(
            vec![Solution::Dyad, Solution::Lustre],
            4,
            Placement::Split { pairs_per_node: 8 },
        );
        c.models = vec![Model::Jac, Model::Stmv];
        c.pairs = vec![2, 4];
        c.strides = vec![None, Some(10)];
        let pts = c.points();
        assert_eq!(pts.len(), 2 * 2 * 2 * 2);
        // Default strides follow the model.
        assert!(pts
            .iter()
            .any(|p| p.model == Model::Stmv && p.stride == Model::Stmv.stride()));
        assert!(pts.iter().any(|p| p.stride == 10));
    }

    #[test]
    fn small_campaign_runs_and_ranks() {
        let mut c = Campaign::new(
            vec![Solution::Dyad, Solution::Lustre],
            2,
            Placement::Split { pairs_per_node: 8 },
        );
        c.frames = 6;
        c.repetitions = 1;
        c.calibration = Calibration::quiet();
        let result = c.run();
        assert_eq!(result.rows.len(), 2);
        let table = result.table();
        assert!(table.contains("DYAD"));
        assert!(table.contains("Lustre"));
        // DYAD wins both rankings in this configuration.
        assert!(result.best_consumption().unwrap().label.contains("DYAD"));
        assert!(result.best_makespan().unwrap().label.contains("DYAD"));
        // JSON is valid.
        let v: serde_json::Value = serde_json::from_str(&result.to_json()).unwrap();
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
    }
}
