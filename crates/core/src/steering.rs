//! Adaptive workflows: in situ analytics *steering* the simulation.
//!
//! §II-B of the paper motivates in situ analytics with runtime steering —
//! "terminate or fork a trajectory" — and the conclusion lists richer
//! workflows as future work. This module implements the terminate case
//! end to end on the simulated testbed:
//!
//! * the producer runs a **real** [`mdsim::MdEngine`] (not the sleep
//!   emulator): each stride advances actual Lennard-Jones dynamics, and
//!   the published frames carry the true atom positions;
//! * the consumer deserializes each frame, runs the
//!   [`analytics::Pipeline`], and applies a steering rule to the result;
//! * when the rule triggers, the consumer publishes a control record in
//!   the KVS (`steer/p<pair>`), which the producer checks (one cheap
//!   lookup) before computing each stride — trajectory terminated, GPU
//!   hours saved.
//!
//! Data still moves through DYAD; the control plane reuses the same KVS
//! the metadata lives in, exactly how a Flux-hosted steering service
//! would do it.

use analytics::{FrameAnalysis, Pipeline};
use bytes::Bytes;
use cluster::{Cluster, ClusterSpec, NodeId};
use dyad::DyadService;
use instrument::Recorder;
use kvs::{KvsClient, KvsServer};
use localfs::LocalFs;
use mdsim::{EngineConfig, Frame, MdEngine, Model};
use simcore::{Sim, SimDuration};
use transport::Transport;

use crate::calibration::Calibration;

/// When should a trajectory be terminated?
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SteeringRule {
    /// Stop when the selection's largest contact-matrix eigenvalue drops
    /// below the threshold (the structure "melted" — Figure 1's events).
    EigenvalueBelow(f64),
    /// Stop when the radius of gyration exceeds the threshold (the
    /// structure expanded out of the region of interest).
    RadiusAbove(f64),
    /// Never stop (baseline).
    None,
}

impl SteeringRule {
    /// Does `analysis` trigger termination?
    pub fn triggers(&self, analysis: &FrameAnalysis) -> bool {
        match *self {
            SteeringRule::EigenvalueBelow(t) => analysis.largest_eigenvalue < t,
            SteeringRule::RadiusAbove(t) => analysis.radius_of_gyration > t,
            SteeringRule::None => false,
        }
    }
}

/// Configuration of one steered trajectory ensemble.
#[derive(Debug, Clone)]
pub struct SteeringConfig {
    /// Independent trajectories (producer-consumer pairs).
    pub pairs: u32,
    /// Frame budget per trajectory (upper bound).
    pub max_frames: u64,
    /// Real MD steps between frames (kept small: this runs true MD).
    pub stride: u64,
    /// Atoms in the real engine.
    pub atoms: usize,
    /// The steering rule the analytics applies.
    pub rule: SteeringRule,
    /// Atoms analyzed per frame (selection size) and contact threshold.
    pub selection: usize,
    /// Contact threshold for the analytics pipeline.
    pub contact_threshold: f64,
    /// Emulated wall time an MD step costs in the simulated timeline.
    pub step_cost: SimDuration,
}

impl Default for SteeringConfig {
    fn default() -> Self {
        SteeringConfig {
            pairs: 2,
            max_frames: 24,
            stride: 10,
            atoms: 125,
            rule: SteeringRule::None,
            selection: 40,
            contact_threshold: 1.7,
            step_cost: SimDuration::from_millis(10),
        }
    }
}

/// Outcome of one steered trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryOutcome {
    /// Pair index.
    pub pair: u32,
    /// Frames actually produced.
    pub frames_produced: u64,
    /// Frames analyzed by the consumer.
    pub frames_analyzed: u64,
    /// Frame index at which the rule fired (if it did).
    pub triggered_at: Option<u64>,
    /// Full analytics history of the trajectory.
    pub history: Vec<FrameAnalysis>,
}

impl TrajectoryOutcome {
    /// Was the trajectory cut short by steering?
    pub fn terminated_early(&self, cfg: &SteeringConfig) -> bool {
        self.frames_produced < cfg.max_frames
    }
}

/// Run a steered ensemble on a fresh two-node simulated testbed
/// (producers on node 0, consumers on node 1, KVS broker on node 0).
pub fn run_steering(cfg: &SteeringConfig, cal: &Calibration, seed: u64) -> Vec<TrajectoryOutcome> {
    let sim = Sim::new(seed);
    let ctx = sim.ctx();
    let cluster = Cluster::build(&ctx, &ClusterSpec::homogeneous(2, cal.node, cal.fabric));
    let tp = Transport::new(&ctx, cluster.fabric().clone(), cal.transport);
    let _kvs_srv = KvsServer::start(&ctx, &tp, NodeId(0), cal.kvs);
    let mk_svc = |node: u32| {
        let fs = LocalFs::new(&ctx, cluster.node(NodeId(node)).nvme.clone(), cal.localfs);
        let kc = KvsClient::new(&ctx, &tp, NodeId(node), NodeId(0), cal.kvs);
        DyadService::start(&ctx, &tp, NodeId(node), fs, kc, cal.dyad.clone())
    };
    let prod_svc = mk_svc(0);
    let cons_svc = mk_svc(1);
    let control_tx = KvsClient::new(&ctx, &tp, NodeId(1), NodeId(0), cal.kvs);
    let control_rx = KvsClient::new(&ctx, &tp, NodeId(0), NodeId(0), cal.kvs);

    let mut handles = Vec::new();
    for pair in 0..cfg.pairs {
        // ---- producer: real MD, steered -------------------------------
        let svc = prod_svc.clone();
        let control = control_rx.clone();
        let pcfg = cfg.clone();
        let pctx = ctx.clone();
        let produced = ctx.spawn(async move {
            let rec = Recorder::new(&pctx);
            let mut engine = MdEngine::new(EngineConfig {
                n_atoms: pcfg.atoms,
                temperature: 1.4, // hot: structures loosen over time
                thermostat_tau: 0.05,
                seed: seed ^ (pair as u64) << 8,
                ..EngineConfig::default()
            });
            let mut frames_produced = 0;
            for frame_idx in 0..pcfg.max_frames {
                // Steering check: one cheap lookup per stride.
                if control.lookup(&steer_key(pair)).await.is_some() {
                    break;
                }
                // Real MD, with its cost charged to the simulated clock.
                engine.run(pcfg.stride);
                pctx.sleep(pcfg.step_cost * pcfg.stride).await;
                let frame = engine.capture(Model::Jac);
                let mut wire = frame;
                wire.step = frame_idx; // frame index, not engine step
                svc.produce(&rec, &traj_key(pair, frame_idx), vec![wire.encode()])
                    .await;
                frames_produced += 1;
            }
            // Publish end-of-trajectory so the consumer can stop waiting.
            svc.produce(&rec, &eot_key(pair), vec![Bytes::from_static(b"eot")])
                .await;
            frames_produced
        });

        // ---- consumer: analyze + steer ---------------------------------
        let svc = cons_svc.clone();
        let control = control_tx.clone();
        let ccfg = cfg.clone();
        let cctx = ctx.clone();
        let analyzed = ctx.spawn(async move {
            let rec = Recorder::new(&cctx);
            let mut session = svc.consumer();
            let mut pipeline = Pipeline::new(ccfg.selection, ccfg.contact_threshold);
            let mut triggered_at = None;
            let mut frames_analyzed = 0;
            for frame_idx in 0..ccfg.max_frames {
                // Race the next frame against end-of-trajectory.
                let frame_key = traj_key(pair, frame_idx);
                let data = {
                    use simcore::{race, Either};
                    // Separate session AND recorder for the racing
                    // end-of-trajectory wait: region stacks are per
                    // recorder and must stay LIFO within each.
                    let eot_rec = Recorder::new(&cctx);
                    let mut eot_session = svc.consumer();
                    match race(
                        session.consume(&rec, &frame_key),
                        eot_session.consume(&eot_rec, &eot_key(pair)),
                    )
                    .await
                    {
                        Either::Left(data) => data,
                        Either::Right(_) => break,
                    }
                };
                let frame = Frame::decode_segments(&data).expect("valid steered frame");
                assert_eq!(frame.step, frame_idx);
                let analysis = pipeline.analyze(&frame);
                frames_analyzed += 1;
                if triggered_at.is_none() && ccfg.rule.triggers(&analysis) {
                    triggered_at = Some(frame_idx);
                    control
                        .commit(&steer_key(pair), Bytes::from_static(b"stop"))
                        .await;
                }
                // Analytics cost.
                cctx.sleep(ccfg.step_cost).await;
            }
            (frames_analyzed, triggered_at, pipeline.history().to_vec())
        });
        handles.push((pair, produced, analyzed));
    }

    let report = sim.run();
    assert!(report.is_clean(), "steering workflow deadlocked");
    handles
        .into_iter()
        .map(|(pair, produced, analyzed)| {
            let frames_produced = produced.try_take().expect("producer finished");
            let (frames_analyzed, triggered_at, history) =
                analyzed.try_take().expect("consumer finished");
            TrajectoryOutcome {
                pair,
                frames_produced,
                frames_analyzed,
                triggered_at,
                history,
            }
        })
        .collect()
}

fn traj_key(pair: u32, frame: u64) -> String {
    format!("steer-run/p{pair:03}/f{frame:05}")
}

fn eot_key(pair: u32) -> String {
    format!("steer-run/p{pair:03}/eot")
}

fn steer_key(pair: u32) -> String {
    format!("control/p{pair:03}/stop")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::quiet()
    }

    #[test]
    fn unsteered_trajectories_run_to_the_frame_budget() {
        let cfg = SteeringConfig {
            pairs: 2,
            max_frames: 6,
            ..SteeringConfig::default()
        };
        let outcomes = run_steering(&cfg, &cal(), 1);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert_eq!(o.frames_produced, 6);
            assert_eq!(o.frames_analyzed, 6);
            assert_eq!(o.triggered_at, None);
            assert!(!o.terminated_early(&cfg));
            assert_eq!(o.history.len(), 6);
        }
    }

    #[test]
    fn impossible_rule_never_triggers() {
        let cfg = SteeringConfig {
            pairs: 1,
            max_frames: 5,
            rule: SteeringRule::RadiusAbove(1e12),
            ..SteeringConfig::default()
        };
        let outcomes = run_steering(&cfg, &cal(), 2);
        assert_eq!(outcomes[0].triggered_at, None);
        assert_eq!(outcomes[0].frames_produced, 5);
    }

    #[test]
    fn trivial_rule_terminates_immediately() {
        // Rg of any real structure exceeds 0, so the first analyzed frame
        // triggers; the producer must stop well short of the budget.
        let cfg = SteeringConfig {
            pairs: 2,
            max_frames: 20,
            rule: SteeringRule::RadiusAbove(0.0),
            ..SteeringConfig::default()
        };
        let outcomes = run_steering(&cfg, &cal(), 3);
        for o in &outcomes {
            assert_eq!(o.triggered_at, Some(0), "pair {}", o.pair);
            assert!(
                o.terminated_early(&cfg),
                "pair {} produced {} frames",
                o.pair,
                o.frames_produced
            );
            // The control signal needs one producer stride to be seen;
            // termination happens within a few frames of the trigger.
            assert!(o.frames_produced <= 5, "stopped at {}", o.frames_produced);
        }
    }

    #[test]
    fn steering_saves_simulated_compute() {
        let base = SteeringConfig {
            pairs: 1,
            max_frames: 12,
            ..SteeringConfig::default()
        };
        let steered_cfg = SteeringConfig {
            rule: SteeringRule::RadiusAbove(0.0),
            ..base.clone()
        };
        let unsteered = run_steering(&base, &cal(), 4);
        let steered = run_steering(&steered_cfg, &cal(), 4);
        assert!(
            steered[0].frames_produced < unsteered[0].frames_produced,
            "steering produced {} vs {}",
            steered[0].frames_produced,
            unsteered[0].frames_produced
        );
    }

    #[test]
    fn analytics_history_reflects_real_dynamics() {
        // Real MD at high temperature: positions evolve, so RMSD to the
        // first frame grows and analytics values vary across frames.
        let cfg = SteeringConfig {
            pairs: 1,
            max_frames: 8,
            ..SteeringConfig::default()
        };
        let outcomes = run_steering(&cfg, &cal(), 5);
        let h = &outcomes[0].history;
        assert_eq!(h.len(), 8);
        assert_eq!(h[0].rmsd_to_first, 0.0);
        assert!(
            h.last().unwrap().rmsd_to_first > 0.01,
            "structure did not move: {:?}",
            h.last()
        );
    }
}
