//! # mdflow — the MD-workflow data-movement study harness
//!
//! The primary contribution of the reproduced paper is an empirical
//! methodology: an MD-inspired point-to-point workflow (producers emulate
//! MD simulation, consumers emulate in situ analytics) whose frames move
//! through one of three data-management solutions — DYAD, node-local XFS,
//! or Lustre — with Caliper/Thicket instrumentation splitting the cost
//! into *data movement* and *idle (synchronization)* time.
//!
//! This crate is that harness, running on simulated substrates:
//!
//! * [`config`] — solutions, molecular models, placements, strides;
//! * [`calibration`] — every device/protocol constant of the simulated
//!   Corona-like testbed in one place;
//! * [`workflow`] — the producer/consumer process bodies (coarse- and
//!   fine-grained manual sync, the DYAD pipeline, and the DYAD-over-PFS
//!   ablation);
//! * [`runner`] — builds the cluster + substrates per run, spawns the
//!   ensemble, collects per-process call-path profiles;
//! * [`report`] — reduces profiles to the paper's movement/idle bars
//!   with mean/std over repetitions;
//! * [`findings`] — programmatic checks of the paper's five findings.
//!
//! ```no_run
//! use mdflow::prelude::*;
//!
//! let wf = WorkflowConfig::new(Solution::Dyad, 4, Placement::SingleNode);
//! let report = run_study(&StudyConfig::paper(wf));
//! println!(
//!     "DYAD consumption: {:.3} ms/frame",
//!     report.consumption_total() * 1e3
//! );
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod calibration;
pub mod campaign;
pub mod config;
pub mod findings;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod steering;
pub mod workflow;

/// One-stop imports for examples and benches.
pub mod prelude {
    pub use crate::arena::{derive_run_seed, ClusterSnapshot, RunArena, RunTimings};
    pub use crate::calibration::Calibration;
    pub use crate::campaign::{
        default_jobs, run_studies_jobs, run_study_jobs, Campaign, CampaignResult, CampaignStats,
    };
    pub use crate::config::{
        FaultConfig, ManualSync, Placement, Solution, StagingConfig, StreamingConfig, StudyConfig,
        WorkflowConfig,
    };
    pub use crate::report::{speedup, Breakdown, StudyReport};
    pub use crate::runner::{
        run_once, run_once_traced, run_once_traced_snap, run_once_warm, run_study, FaultTotals,
        RunMetrics, StagingTotals, StreamTotals,
    };
    pub use crate::schedule::FrameSchedule;
    pub use cluster::{FabricSpec, TopologySpec};
    pub use faults::{ChaosSpec, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
    pub use mdsim::Model;
    pub use staging::RetentionPolicy;
    pub use streaming::GroupMode;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn study(wf: WorkflowConfig, reps: u32) -> StudyReport {
        let mut s = StudyConfig::paper(wf);
        s.repetitions = reps;
        s.calibration = Calibration::quiet();
        run_study(&s)
    }

    #[test]
    fn single_node_dyad_vs_xfs_reproduces_finding1_shape() {
        let frames = 16;
        let dyad = study(
            WorkflowConfig::new(Solution::Dyad, 2, Placement::SingleNode).with_frames(frames),
            2,
        );
        let xfs = study(
            WorkflowConfig::new(Solution::Xfs, 2, Placement::SingleNode).with_frames(frames),
            2,
        );
        // Production: DYAD slower (metadata), but same order of magnitude.
        let prod_ratio = dyad.production_total() / xfs.production_total();
        assert!(
            prod_ratio > 1.05 && prod_ratio < 3.0,
            "production ratio {prod_ratio} (paper: 1.4)"
        );
        // Consumption: XFS idle ≈ frame period, DYAD idle amortized.
        assert!(
            xfs.consumption_idle.mean > 0.5,
            "XFS idle {} should be ~the frame period",
            xfs.consumption_idle.mean
        );
        let cons_speedup = xfs.consumption_total() / dyad.consumption_total();
        assert!(
            cons_speedup > 5.0,
            "consumption speedup {cons_speedup} (paper: 192.9 at 128 frames)"
        );
    }

    #[test]
    fn consumption_speedup_grows_with_frame_count() {
        // The paper's 192.9x depends on amortizing the one cold sync over
        // 128 frames; verify the trend with 8 vs 32 frames.
        let short = study(
            WorkflowConfig::new(Solution::Dyad, 1, Placement::SingleNode).with_frames(8),
            1,
        );
        let long = study(
            WorkflowConfig::new(Solution::Dyad, 1, Placement::SingleNode).with_frames(32),
            1,
        );
        assert!(
            long.consumption_idle.mean < short.consumption_idle.mean,
            "idle/frame should shrink with more frames: {} vs {}",
            long.consumption_idle.mean,
            short.consumption_idle.mean
        );
    }

    #[test]
    fn two_node_dyad_beats_lustre() {
        let frames = 12;
        let dyad = study(
            WorkflowConfig::new(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 })
                .with_frames(frames),
            2,
        );
        let lustre = study(
            WorkflowConfig::new(Solution::Lustre, 2, Placement::Split { pairs_per_node: 8 })
                .with_frames(frames),
            2,
        );
        let prod = lustre.production_movement.mean / dyad.production_movement.mean;
        assert!(prod > 2.0, "production movement gap {prod} (paper: 7.5)");
        let cons = lustre.consumption_total() / dyad.consumption_total();
        assert!(cons > 3.0, "overall consumption gap {cons} (paper: 197.4)");
    }

    #[test]
    fn fine_grained_sync_ablation_reduces_idle() {
        let frames = 10;
        let mut coarse_wf =
            WorkflowConfig::new(Solution::Xfs, 1, Placement::SingleNode).with_frames(frames);
        coarse_wf.manual_sync = ManualSync::Coarse;
        let mut fine_wf = coarse_wf.clone();
        fine_wf.manual_sync = ManualSync::Fine;
        let coarse = study(coarse_wf, 1);
        let fine = study(fine_wf, 1);
        assert!(
            fine.consumption_idle.mean < coarse.consumption_idle.mean / 2.0,
            "fine {} vs coarse {}",
            fine.consumption_idle.mean,
            coarse.consumption_idle.mean
        );
        assert!(fine.makespan.mean < coarse.makespan.mean);
    }

    #[test]
    fn polling_sync_pipelines_like_dyad_but_pays_polls() {
        let frames = 10;
        let mut coarse_wf =
            WorkflowConfig::new(Solution::Xfs, 1, Placement::SingleNode).with_frames(frames);
        coarse_wf.manual_sync = ManualSync::Coarse;
        let mut poll_wf = coarse_wf.clone();
        poll_wf.manual_sync = ManualSync::Polling;
        let coarse = study(coarse_wf, 1);
        let polling = study(poll_wf, 1);
        // Polling never serializes the pair: makespan ~1 period/frame.
        assert!(
            polling.makespan.mean < coarse.makespan.mean * 0.7,
            "polling {} vs coarse {}",
            polling.makespan.mean,
            coarse.makespan.mean
        );
        // But the consumer still idles waiting for the marker (bounded
        // by the poll interval granularity).
        assert!(polling.consumption_idle.mean > 0.0);
        assert!(
            polling.consumption_idle.mean < coarse.consumption_idle.mean,
            "polling idle {} should beat the coarse barrier {}",
            polling.consumption_idle.mean,
            coarse.consumption_idle.mean
        );
    }

    #[test]
    fn lock_based_sync_pipelines_with_lock_overhead() {
        let frames = 10;
        let split = Placement::Split { pairs_per_node: 8 };
        let mut coarse_wf = WorkflowConfig::new(Solution::Lustre, 1, split).with_frames(frames);
        coarse_wf.manual_sync = ManualSync::Coarse;
        let mut lock_wf = coarse_wf.clone();
        lock_wf.manual_sync = ManualSync::LockBased;
        let coarse = study(coarse_wf, 1);
        let locked = study(lock_wf, 1);
        // Lock-based sync never serializes the pair.
        assert!(
            locked.makespan.mean < coarse.makespan.mean * 0.7,
            "locked {} vs coarse {}",
            locked.makespan.mean,
            coarse.makespan.mean
        );
        // But it pays lock round trips on the producer side too.
        assert!(
            locked.production_idle.mean > 0.0,
            "producer-side lock cost missing"
        );
        assert!(
            locked.consumption_idle.mean < coarse.consumption_idle.mean,
            "locked idle {} should beat the coarse barrier {}",
            locked.consumption_idle.mean,
            coarse.consumption_idle.mean
        );
    }

    #[test]
    fn bursty_schedules_run_and_hurt_manual_sync_more() {
        // §III-A: DYAD is "particularly beneficial in scenarios where
        // the data generation rate varies significantly". Same mean rate,
        // bursty vs periodic, DYAD vs Lustre.
        let frames = 24;
        let split = Placement::Split { pairs_per_node: 8 };
        let bursty = FrameSchedule::Bursty {
            burst_gap: simcore::SimDuration::from_millis(50),
            quiet_gap: simcore::SimDuration::from_millis(1590),
            burst_persistence: 0.5,
            burst_entry: 0.5,
        };
        assert!((bursty.mean_gap().as_secs_f64() - 0.82).abs() < 1e-9);
        let dyad = study(
            WorkflowConfig::new(Solution::Dyad, 2, split)
                .with_frames(frames)
                .with_schedule(bursty.clone()),
            2,
        );
        let lustre = study(
            WorkflowConfig::new(Solution::Lustre, 2, split)
                .with_frames(frames)
                .with_schedule(bursty),
            2,
        );
        // DYAD absorbs bursts (producers never block on consumers);
        // coarse-grained Lustre serializes, so bursts stretch the
        // makespan well past the production timeline.
        assert!(
            lustre.makespan.mean > dyad.makespan.mean * 1.5,
            "bursty: lustre {} vs dyad {}",
            lustre.makespan.mean,
            dyad.makespan.mean
        );
    }

    #[test]
    fn reports_serialize_to_json() {
        let r = study(
            WorkflowConfig::new(Solution::Dyad, 1, Placement::SingleNode).with_frames(3),
            1,
        );
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["workflow"]["solution"], "Dyad");
        assert!(v["runs"].as_array().unwrap().len() == 1);
    }
}
