//! Builds a simulated testbed per run, spawns the ensemble, and collects
//! per-process profiles.

use std::rc::Rc;
use std::time::Instant;

use cluster::{Cluster, NodeId};
use dyad::DyadService;
use instrument::Profile;
use kvs::{KvsClient, KvsHandle, KvsMesh, KvsServer};
use localfs::LocalFs;
use mdsim::StepClock;
use pfs::{LdlmClient, LdlmServer, LdlmSpec, ParallelFs};
use rayon::prelude::*;
use serde::Serialize;
use simcore::{Sim, SimDuration, SimTime};
use staging::{RetentionPolicy, StagingManager, StagingSpec, StagingStats};
use streaming::{StreamAcker, StreamService, StreamSpec, StreamStats};
use transport::Transport;

use crate::arena::{ClusterSnapshot, RunArena, RunTimings};
use crate::calibration::Calibration;
use crate::config::{Solution, StudyConfig, WorkflowConfig};
use crate::workflow::{
    consumer_dyad, consumer_dyad_on_pfs, consumer_manual, pair_sync, producer_dyad,
    producer_dyad_on_pfs, producer_manual, publisher_stream, reducer_stream, subscriber_stream,
    ConsumerArgs, ProducerArgs, Storage, StreamRole,
};

/// Staging-lifecycle counters summed over every node's
/// [`StagingManager`] (all zero for non-DYAD solutions and for the
/// unbounded default).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StagingTotals {
    /// Frames fully retired (unlinked after all consumer acks).
    pub evicted_frames: u64,
    /// Bytes those retirements freed.
    pub evicted_bytes: u64,
    /// Still-needed frames spilled from NVMe to the PFS.
    pub spilled_frames: u64,
    /// Bytes spilled to the PFS.
    pub spilled_bytes: u64,
    /// Consumer-side cache copies dropped under pressure.
    pub cache_evictions: u64,
    /// Times a producer blocked at the high watermark.
    pub backpressure_stalls: u64,
    /// Total simulated seconds producers spent blocked.
    pub backpressure_stall_secs: f64,
    /// Consumes that fetched a spilled frame from the PFS.
    pub pfs_fallbacks: u64,
    /// Consumption acknowledgements committed to the KVS.
    pub acks_published: u64,
    /// Largest staged footprint of any single node, bytes.
    pub peak_staged_bytes: u64,
}

impl StagingTotals {
    fn absorb(&mut self, s: &StagingStats) {
        self.evicted_frames += s.retired_frames;
        self.evicted_bytes += s.retired_bytes;
        self.spilled_frames += s.spilled_frames;
        self.spilled_bytes += s.spilled_bytes;
        self.cache_evictions += s.cache_evictions;
        self.backpressure_stalls += s.backpressure_stalls;
        self.backpressure_stall_secs += s.backpressure_wait.as_secs_f64();
        self.pfs_fallbacks += s.pfs_fallbacks;
        self.acks_published += s.acks_published;
        self.peak_staged_bytes = self.peak_staged_bytes.max(s.peak_staged_bytes);
    }
}

/// Streaming data-plane counters summed over every node's
/// [`StreamService`] (all zero for the other solutions).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StreamTotals {
    /// Steps published across all groups.
    pub steps_published: u64,
    /// Steps consumed across all subscriber sessions.
    pub steps_consumed: u64,
    /// Bytes published.
    pub bytes_published: u64,
    /// Bytes consumed.
    pub bytes_consumed: u64,
    /// Publishes that found the bounded in-flight window full.
    pub window_stalls: u64,
    /// Simulated seconds publishers spent stalled on a full window.
    pub window_stall_secs: f64,
    /// Outstanding-ack entries reclaimed from crashed subscribers.
    pub slots_reclaimed: u64,
    /// Window ack-refresh sweeps (KVS ack-key reads).
    pub ack_refreshes: u64,
    /// Remote step fetches served by owner nodes.
    pub fetches_served: u64,
    /// Consumptions that parked in a KVS watch (cold syncs).
    pub cold_syncs: u64,
    /// Consumptions satisfied by the warm lookup fast path.
    pub warm_syncs: u64,
    /// Consumptions that found the step already node-local.
    pub local_hits: u64,
}

impl StreamTotals {
    fn absorb(&mut self, s: &StreamStats) {
        self.steps_published += s.steps_published;
        self.steps_consumed += s.steps_consumed;
        self.bytes_published += s.bytes_published;
        self.bytes_consumed += s.bytes_consumed;
        self.window_stalls += s.window_stalls;
        self.window_stall_secs += SimDuration::from_nanos(s.window_stall_ns).as_secs_f64();
        self.slots_reclaimed += s.slots_reclaimed;
        self.ack_refreshes += s.ack_refreshes;
        self.fetches_served += s.fetches_served;
        self.cold_syncs += s.cold_syncs;
        self.warm_syncs += s.warm_syncs;
        self.local_hits += s.local_hits;
    }
}

/// Fault-injection and recovery counters for one repetition — the
/// "recovery time" half of the movement/recovery split. All zero when
/// the run's [`crate::config::FaultConfig`] is disabled.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FaultTotals {
    /// Fault windows actually opened by the armed plan.
    pub injected: u64,
    /// Node crash windows.
    pub crashes: u64,
    /// Node restarts completed.
    pub restarts: u64,
    /// Transport-level RPC retry attempts (all clients).
    pub rpc_retries: u64,
    /// RPCs that exhausted their retry budget.
    pub rpc_giveups: u64,
    /// Simulated seconds spent in transport retry backoff — recovery
    /// time that would otherwise be misread as data-movement time.
    pub retry_backoff_secs: f64,
    /// Staged frames lost to node crashes before they could spill.
    pub frames_lost: u64,
    /// Spilled/lost frames re-published to the KVS by restart hooks.
    pub republished_frames: u64,
    /// Producer-side whole-produce retries after a typed error.
    pub produce_outer_retries: u64,
    /// Consumer-side whole-consume retries after a typed error.
    pub consume_outer_retries: u64,
    /// Frames a producer gave up on (tombstoned, typed).
    pub produce_failures: u64,
    /// Frames a consumer gave up on (typed, never a hang).
    pub consume_failures: u64,
    /// Lost-frame tombstones consumers observed (typed `FrameLost`).
    pub frames_lost_observed: u64,
    /// Permanent KVS shard crashes injected (mesh runs).
    pub kvs_shard_crashes: u64,
}

/// Metadata-plane counters for one repetition, summed over every KVS
/// broker shard (all zero for solutions without a KVS).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct KvsTotals {
    /// Broker shards the run used (1 = the legacy single broker).
    pub shards: u32,
    /// Replication factor (1 = unreplicated).
    pub replication: u32,
    /// Commits applied across all shards.
    pub commits: u64,
    /// Lookups served across all shards.
    pub lookups: u64,
    /// Server-side waits served across all shards.
    pub waits: u64,
    /// Replication deltas shipped between shards.
    pub deltas_sent: u64,
    /// Replication deltas applied at replicas.
    pub deltas_applied: u64,
    /// Deltas that arrived out of causal order and buffered.
    pub deltas_buffered: u64,
    /// Worst per-shard peak of requests queued or in service — the
    /// metadata-plane congestion signal the shard sweep gates on.
    pub peak_queue: u64,
}

impl KvsTotals {
    fn absorb(&mut self, s: &kvs::KvsStats) {
        self.commits += s.commits;
        self.lookups += s.lookups;
        self.waits += s.waits;
        self.deltas_sent += s.deltas_sent;
        self.deltas_applied += s.deltas_applied;
        self.deltas_buffered += s.deltas_buffered;
        self.peak_queue = self.peak_queue.max(s.peak_queue);
    }
}

/// Raw result of one repetition.
pub struct RunMetrics {
    /// One profile per producer process.
    pub producers: Vec<Profile>,
    /// One profile per consumer process.
    pub consumers: Vec<Profile>,
    /// Simulated makespan.
    pub makespan: SimTime,
    /// Discrete events processed (simulator health metric).
    pub events: u64,
    /// Staging-lifecycle counters (DYAD/streaming only).
    pub staging: StagingTotals,
    /// Streaming data-plane counters (zero for the other solutions).
    pub streaming: StreamTotals,
    /// Fault-injection and recovery counters (zero when disabled).
    pub faults: FaultTotals,
    /// Metadata-plane counters (zero for solutions without a KVS).
    pub kvs: KvsTotals,
}

/// Spawn a process on calendar shard `shard` and record the simulated
/// time at which it finished. Shard placement is a locality hint only
/// (see [`simcore::Ctx::spawn_on`]); the workload pins each producer and
/// consumer to its node's leaf shard.
fn spawn_timed(
    ctx: &simcore::Ctx,
    shard: u32,
    fut: impl std::future::Future<Output = Profile> + 'static,
) -> simcore::JoinHandle<(Profile, SimTime)> {
    let ctx2 = ctx.clone();
    ctx.spawn_on(shard, async move {
        let p = fut.await;
        (p, ctx2.now())
    })
}

/// Execute one repetition of `wf` with `seed`.
pub fn run_once(wf: &WorkflowConfig, cal: &Calibration, seed: u64) -> RunMetrics {
    let setup_started = Instant::now();
    let snap = ClusterSnapshot::prepare(wf, cal, seed ^ 0x7E3A);
    let sim = Sim::with_config(snap.sim_config(seed));
    run_prepared(
        &snap,
        simcore::trace::Tracer::disabled(),
        sim,
        setup_started,
    )
    .metrics
}

/// [`run_once`] with Chrome-trace capture: every producer/consumer
/// region lands on its own timeline track. Export the returned tracer
/// with [`simcore::trace::Tracer::to_chrome_json`].
pub fn run_once_traced(
    wf: &WorkflowConfig,
    cal: &Calibration,
    seed: u64,
) -> (RunMetrics, simcore::trace::Tracer) {
    let setup_started = Instant::now();
    let snap = ClusterSnapshot::prepare(wf, cal, seed ^ 0x7E3A);
    let (metrics, _, tracer) = run_once_traced_snap(&snap, seed, setup_started);
    (metrics, tracer)
}

/// Traced run against a prepared snapshot, honoring the snapshot's
/// worker count. This is what the worker-identity fixtures drive: the
/// returned tracer's Chrome JSON must be byte-identical for any
/// [`ClusterSnapshot::with_workers`] value.
pub fn run_once_traced_snap(
    snap: &ClusterSnapshot,
    seed: u64,
    setup_started: Instant,
) -> (RunMetrics, RunTimings, simcore::trace::Tracer) {
    let tracer = simcore::trace::Tracer::enabled();
    let sim = Sim::with_config(snap.sim_config(seed));
    let out = run_prepared(snap, tracer.clone(), sim, setup_started);
    (out.metrics, out.timings, tracer)
}

/// Warm-start variant of [`run_once`]: execute one repetition against a
/// prepared [`ClusterSnapshot`], recycling the executor allocations in
/// `arena` between runs. Trajectory-identical to [`run_once`] with the
/// same seed (see the [`crate::arena`] module docs); this is what the
/// campaign executor drives, one arena per worker.
pub fn run_once_warm(
    snap: &ClusterSnapshot,
    seed: u64,
    arena: &mut RunArena,
) -> (RunMetrics, RunTimings) {
    let setup_started = Instant::now();
    let cfg = snap.sim_config(seed);
    let sim = match arena.sim.take() {
        Some(recycled) => Sim::with_config_arena(cfg, recycled),
        None => Sim::with_config(cfg),
    };
    let out = run_prepared(snap, simcore::trace::Tracer::disabled(), sim, setup_started);
    arena.sim = Some(out.arena);
    (out.metrics, out.timings)
}

/// What one simulated repetition hands back to its caller: the metrics,
/// the wall-clock setup/sim split, and the recovered executor arena.
struct RunOutput {
    metrics: RunMetrics,
    timings: RunTimings,
    arena: simcore::SimArena,
}

/// The shared run body: build the live substrates from the snapshot,
/// spawn the ensemble, advance the simulation, collect. Both the cold
/// path ([`run_once`], which prepares a throwaway snapshot) and the warm
/// path ([`run_once_warm`]) execute exactly this code, which is what
/// keeps their trajectories identical.
fn run_prepared(
    snap: &ClusterSnapshot,
    tracer: simcore::trace::Tracer,
    sim: Sim,
    setup_started: Instant,
) -> RunOutput {
    let wf = &snap.workflow;
    let cal = &snap.calibration;
    if wf.solution == Solution::Xfs {
        assert_eq!(
            wf.placement,
            crate::config::Placement::SingleNode,
            "XFS cannot move data between nodes (paper §III-B)"
        );
    }
    let ctx = sim.ctx();

    // ---- topology ------------------------------------------------------
    let plan = &snap.plan;
    let n_compute = snap.n_compute;
    let n_total = snap.n_total;
    let pfs_nodes = snap.pfs_nodes.clone();
    let cluster = Cluster::build(&ctx, &snap.spec);
    let tp = Transport::new(&ctx, cluster.fabric().clone(), cal.transport);
    // Calendar shard for node-local activity: the node's leaf shard
    // when the fabric topology shards the calendar, else shard 0.
    // Placement is a locality hint; it never changes the schedule.
    let fabric_spec = snap.spec.fabric;
    let node_shard = move |n: u32| fabric_spec.shard_of(NodeId(n), n_total);

    // ---- fault board -----------------------------------------------------
    // Built only when the plan is non-empty: a disabled FaultConfig arms
    // zero timers and leaves every substrate byte-identical to a build
    // without the fault layer (the determinism fixtures pin this). The
    // plan itself is part of the snapshot (pure data, seeded by the
    // FaultConfig, shared by every repetition of the point).
    let fault_board = snap.fault_plan.as_ref().map(|plan| {
        let board = faults::FaultBoard::new(&ctx, n_total, cal.n_osts);
        tp.set_faults(board.clone());
        (board, plan)
    });

    // ---- substrates ------------------------------------------------------
    let local_fs: Vec<LocalFs> = (0..n_compute as u32)
        .map(|i| {
            let mut nvme = cluster.node(NodeId(i)).nvme.clone();
            let mut fs_probe = None;
            if let Some((board, _)) = &fault_board {
                let b = board.clone();
                nvme.set_slow_probe(Rc::new(move || b.nvme_factor(i)));
                // Device-error injection only for DYAD, whose produce
                // and consume paths carry typed recovery; the manual
                // baselines model faults as slowdowns and freezes.
                if wf.solution == Solution::Dyad {
                    let b = board.clone();
                    fs_probe = Some(Rc::new(move || b.nvme_error(i)) as Rc<dyn Fn() -> bool>);
                }
            }
            let mut fs = ctx.with_shard(node_shard(i), || LocalFs::new(&ctx, nvme, cal.localfs));
            if let Some(p) = fs_probe {
                fs.set_io_error_probe(p);
            }
            fs
        })
        .collect();
    // Metadata plane: the legacy single broker on node 0, or the sharded
    // mesh when the workflow opts in. Shard s is colocated on compute
    // node (s % n_compute), which puts shard 0 exactly where the legacy
    // broker lives — a forced one-shard mesh replays the legacy schedule.
    let kvs_mesh = if wf.solution.needs_kvs() && wf.kvs_mesh_enabled() {
        let shard_nodes: Vec<NodeId> = (0..wf.kvs_shards)
            .map(|s| NodeId(s % n_compute as u32))
            .collect();
        Some(KvsMesh::start(
            &ctx,
            &tp,
            &shard_nodes,
            cal.kvs,
            wf.kvs_replication,
        ))
    } else {
        None
    };
    let kvs_server = if wf.solution.needs_kvs() && kvs_mesh.is_none() {
        Some(KvsServer::start(&ctx, &tp, NodeId(0), cal.kvs))
    } else {
        None
    };
    let kvs_client = |node: u32| -> KvsHandle {
        match &kvs_mesh {
            Some(mesh) => mesh.client(&ctx, &tp, NodeId(node)).into(),
            None => KvsClient::new(&ctx, &tp, NodeId(node), NodeId(0), cal.kvs).into(),
        }
    };
    let pfs = pfs_nodes.map(|(mds, osts)| ParallelFs::start(&ctx, &tp, mds, osts, cal.pfs));
    // One staging manager per compute node for the staged backends
    // (DYAD and streaming): tracks the staged-frame lifecycle and (when
    // the budget is finite) runs the evictor.
    let uses_staging = matches!(wf.solution, Solution::Dyad | Solution::Streaming);
    let staging_mgrs: Vec<Option<Rc<StagingManager>>> = if uses_staging {
        let spec = StagingSpec {
            budget_bytes: wf.staging.budget_bytes.unwrap_or(u64::MAX),
            low_watermark: cal.staging_low_watermark,
            high_watermark: cal.staging_high_watermark,
            evict_interval: cal.staging_evict_interval,
            retention: wf.staging.retention,
        };
        (0..n_compute as u32)
            .map(|i| {
                let pfs_client = if wf.staging.spill_to_pfs {
                    pfs.as_ref().map(|p| p.client(&ctx, NodeId(i)))
                } else {
                    None
                };
                let mgr = ctx.with_shard(node_shard(i), || {
                    let mgr = StagingManager::new(
                        &ctx,
                        NodeId(i),
                        local_fs[i as usize].clone(),
                        kvs_client(i),
                        pfs_client,
                        spec,
                    );
                    // Only burn evictor wake-ups when a pass can ever act.
                    if mgr.is_bounded() || wf.staging.retention == RetentionPolicy::EagerRetire {
                        mgr.spawn_evictor();
                    }
                    mgr
                });
                Some(mgr)
            })
            .collect()
    } else {
        vec![None; n_compute]
    };
    let dyad_services: Vec<Rc<DyadService>> = if wf.solution == Solution::Dyad {
        (0..n_compute as u32)
            .map(|i| {
                let mut spec = cal.dyad.clone();
                spec.warm_sync = wf.dyad_warm_sync;
                ctx.with_shard(node_shard(i), || {
                    DyadService::start_staged(
                        &ctx,
                        &tp,
                        NodeId(i),
                        local_fs[i as usize].clone(),
                        kvs_client(i),
                        spec,
                        staging_mgrs[i as usize].clone(),
                    )
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    // Per-node stream services: the SST-style peer of the DYAD service,
    // sharing the DYAD calibration constants so the fanout=1 shape is a
    // like-for-like comparison.
    let stream_services: Vec<Rc<StreamService>> = if wf.solution == Solution::Streaming {
        (0..n_compute as u32)
            .map(|i| {
                let spec = StreamSpec {
                    managed_dir: streaming::DEFAULT_MANAGED_DIR.to_string(),
                    window: wf.streaming.window.max(1),
                    publish_overhead: cal.dyad.produce_overhead,
                    service_threads: cal.dyad.service_threads,
                    service_time: cal.dyad.service_time,
                    warm_sync: wf.dyad_warm_sync,
                    reclaim_on_crash: wf.streaming.reclaim_on_crash,
                    stall_poll: StreamSpec::default().stall_poll,
                };
                ctx.with_shard(node_shard(i), || {
                    StreamService::start_staged(
                        &ctx,
                        &tp,
                        NodeId(i),
                        local_fs[i as usize].clone(),
                        kvs_client(i),
                        spec,
                        staging_mgrs[i as usize].clone(),
                    )
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    // Crash/restart lifecycle: a node crash loses that node's staged
    // NVMe frames (spilled copies survive on the PFS); the restart hook
    // re-publishes what survived and tombstones what did not. Hooks are
    // registered before the plan is armed so the first event sees them.
    if let Some((board, plan)) = &fault_board {
        for (i, mgr) in staging_mgrs.iter().enumerate() {
            if let Some(mgr) = mgr {
                let m = mgr.clone();
                board.on_crash(move |n| {
                    if n == i as u32 {
                        m.on_node_crash();
                    }
                });
                let m = mgr.clone();
                let hctx = ctx.clone();
                board.on_restart(move |n| {
                    if n == i as u32 {
                        let m = m.clone();
                        hctx.spawn(async move { m.on_node_restart().await });
                    }
                });
            }
        }
        board.arm(plan);
    }
    // Lock service (lock-based manual sync only), colocated with the MDS
    // for Lustre or the KVS broker node otherwise.
    let ldlm_server: Option<std::rc::Rc<LdlmServer>> =
        if wf.manual_sync == crate::config::ManualSync::LockBased {
            let node = pfs.as_ref().map(|p| p.mds().node()).unwrap_or(NodeId(0));
            Some(LdlmServer::start(&ctx, &tp, node, LdlmSpec::default()))
        } else {
            None
        };
    let ldlm_client = |node: u32| {
        ldlm_server
            .as_ref()
            .map(|srv| LdlmClient::new(&ctx, &tp, NodeId(node), srv.node()))
    };

    // ---- workload --------------------------------------------------------
    let template = Rc::new(snap.template.clone());
    let clock = StepClock {
        ms_per_step: wf.model.ms_per_step(),
        jitter: cal.md_jitter,
    };
    let period = SimDuration::from_secs_f64(wf.frame_period_secs());

    let mut prod_handles = Vec::with_capacity(wf.pairs as usize);
    let mut cons_handles = Vec::with_capacity(wf.pairs as usize);
    for (pair, &(pn, cn)) in plan.pair_nodes.iter().enumerate() {
        let pair = pair as u32;
        // Low-discrepancy launch stagger across one frame period: real
        // ensembles never start in lockstep, and phase-locked pairs
        // would otherwise collide on every shared resource at once.
        let stagger = period.mul_f64((pair as f64 * 0.618_033_988_75).fract());
        let pargs = ProducerArgs {
            ctx: ctx.clone(),
            pair,
            frames: wf.frames,
            stride: wf.stride,
            clock,
            template: template.clone(),
            serialize_cpu: cal.serialize_cpu,
            start_offset: stagger,
            tracer: tracer.clone(),
            schedule: wf.schedule.clone(),
            faults: fault_board.as_ref().map(|(b, _)| b.clone()),
            node: pn,
        };
        let cargs = ConsumerArgs {
            ctx: ctx.clone(),
            pair,
            frames: wf.frames,
            analytics: period,
            jitter: cal.md_jitter,
            rng_stream: 0xC000 + pair as u64,
            start_offset: stagger + period.mul_f64(cal.consumer_launch_delay),
            tracer: tracer.clone(),
            template: template.clone(),
            deserialize_cpu: cal.deserialize_cpu,
            faults: fault_board.as_ref().map(|(b, _)| b.clone()),
            node: cn,
        };
        let rng_stream = 0x9000 + pair as u64;
        match wf.solution {
            Solution::Dyad => {
                let psvc = dyad_services[pn as usize].clone();
                let csvc = dyad_services[cn as usize].clone();
                // Retention contract: the producer node's evictor must
                // hold each of this pair's frames until consumer
                // `c{pair}` acknowledges it.
                if let Some(mgr) = &staging_mgrs[pn as usize] {
                    let (frame_dir, consumer_id) = &snap.registrations[pair as usize];
                    mgr.register_consumer(frame_dir, consumer_id);
                }
                prod_handles.push(spawn_timed(
                    &ctx,
                    node_shard(pn),
                    producer_dyad(pargs, psvc, rng_stream),
                ));
                cons_handles.push(spawn_timed(
                    &ctx,
                    node_shard(cn),
                    consumer_dyad(cargs, csvc),
                ));
            }
            Solution::Xfs => {
                let storage = Storage::Local(local_fs[pn as usize].clone());
                let s = pair_sync();
                prod_handles.push(spawn_timed(
                    &ctx,
                    node_shard(pn),
                    producer_manual(
                        pargs,
                        storage.clone(),
                        (s.ready_tx, s.done_rx),
                        wf.manual_sync,
                        ldlm_client(pn),
                        rng_stream,
                    ),
                ));
                cons_handles.push(spawn_timed(
                    &ctx,
                    node_shard(cn),
                    consumer_manual(
                        cargs,
                        storage,
                        (s.ready_rx, s.done_tx),
                        wf.manual_sync,
                        ldlm_client(cn),
                        cal.manual_poll_interval,
                    ),
                ));
            }
            Solution::Lustre => {
                let fs = pfs.as_ref().expect("pfs built");
                let pstore = Storage::Pfs(fs.client(&ctx, NodeId(pn)));
                let cstore = Storage::Pfs(fs.client(&ctx, NodeId(cn)));
                let s = pair_sync();
                prod_handles.push(spawn_timed(
                    &ctx,
                    node_shard(pn),
                    producer_manual(
                        pargs,
                        pstore,
                        (s.ready_tx, s.done_rx),
                        wf.manual_sync,
                        ldlm_client(pn),
                        rng_stream,
                    ),
                ));
                cons_handles.push(spawn_timed(
                    &ctx,
                    node_shard(cn),
                    consumer_manual(
                        cargs,
                        cstore,
                        (s.ready_rx, s.done_tx),
                        wf.manual_sync,
                        ldlm_client(cn),
                        cal.manual_poll_interval,
                    ),
                ));
            }
            Solution::DyadOnPfs => {
                let fs = pfs.as_ref().expect("pfs built");
                let pstore = Storage::Pfs(fs.client(&ctx, NodeId(pn)));
                let cstore = Storage::Pfs(fs.client(&ctx, NodeId(cn)));
                prod_handles.push(spawn_timed(
                    &ctx,
                    node_shard(pn),
                    producer_dyad_on_pfs(pargs, pstore, kvs_client(pn), NodeId(pn), rng_stream),
                ));
                cons_handles.push(spawn_timed(
                    &ctx,
                    node_shard(cn),
                    consumer_dyad_on_pfs(cargs, cstore, kvs_client(cn), wf.dyad_warm_sync),
                ));
            }
            Solution::Streaming => {
                unreachable!("streaming placement has no pair_nodes (see stream_plan)")
            }
        }
    }

    // Streaming workload: M:N groups instead of pairs. Registrations
    // first (the retention contract must be in place before the first
    // step lands), then one publisher per group leaf and one subscriber
    // per group member (or the single fan-in reducer).
    if let Some(sp) = &snap.stream_plan {
        for (node, dir, consumer) in &snap.stream_regs {
            if let Some(mgr) = &staging_mgrs[*node as usize] {
                mgr.register_consumer(dir, consumer);
            }
        }
        let s = &wf.streaming;
        let mut pub_idx = 0u32;
        let mut sub_idx = 0u32;
        for (g, gp) in sp.groups.iter().enumerate() {
            let g = g as u32;
            // Same low-discrepancy launch stagger as the pair loop,
            // per group.
            let stagger = period.mul_f64((g as f64 * 0.618_033_988_75).fract());
            let role = StreamRole {
                group: g,
                mode: s.group,
                fanout: s.fanout.max(1),
                fanin: s.fanin.max(1),
                leaf: 0,
                agg_frames: s.agg_frames.max(1),
            };
            let group_ackers: Vec<StreamAcker> = if s.fanin > 1 {
                vec![StreamAcker {
                    consumer: format!("g{g}r"),
                    node: gp.subscribers[0],
                }]
            } else {
                gp.subscribers
                    .iter()
                    .enumerate()
                    .map(|(j, &n)| StreamAcker {
                        consumer: match s.group {
                            streaming::GroupMode::Broadcast => format!("g{g}s{j}"),
                            streaming::GroupMode::Partitioned => format!("g{g}p"),
                        },
                        node: n,
                    })
                    .collect()
            };
            for (l, &pn) in gp.publishers.iter().enumerate() {
                let pargs = ProducerArgs {
                    ctx: ctx.clone(),
                    pair: pub_idx,
                    frames: wf.frames,
                    stride: wf.stride,
                    clock,
                    template: template.clone(),
                    serialize_cpu: cal.serialize_cpu,
                    start_offset: stagger,
                    tracer: tracer.clone(),
                    schedule: wf.schedule.clone(),
                    faults: fault_board.as_ref().map(|(b, _)| b.clone()),
                    node: pn,
                };
                let leaf_role = StreamRole {
                    leaf: l as u32,
                    ..role
                };
                prod_handles.push(spawn_timed(
                    &ctx,
                    node_shard(pn),
                    publisher_stream(
                        pargs,
                        stream_services[pn as usize].clone(),
                        leaf_role,
                        group_ackers.clone(),
                        0x9000 + pub_idx as u64,
                    ),
                ));
                pub_idx += 1;
            }
            for (j, &cn) in gp.subscribers.iter().enumerate() {
                let cargs = ConsumerArgs {
                    ctx: ctx.clone(),
                    pair: sub_idx,
                    frames: wf.frames,
                    analytics: period,
                    jitter: cal.md_jitter,
                    rng_stream: 0xC000 + sub_idx as u64,
                    start_offset: stagger + period.mul_f64(cal.consumer_launch_delay),
                    tracer: tracer.clone(),
                    template: template.clone(),
                    deserialize_cpu: cal.deserialize_cpu,
                    faults: fault_board.as_ref().map(|(b, _)| b.clone()),
                    node: cn,
                };
                let svc = stream_services[cn as usize].clone();
                if s.fanin > 1 {
                    cons_handles.push(spawn_timed(
                        &ctx,
                        node_shard(cn),
                        reducer_stream(cargs, svc, role),
                    ));
                } else {
                    cons_handles.push(spawn_timed(
                        &ctx,
                        node_shard(cn),
                        subscriber_stream(cargs, svc, role, j as u32),
                    ));
                }
                sub_idx += 1;
            }
        }
    }

    // Everything up to here is setup; everything after is simulation.
    let setup_secs = setup_started.elapsed().as_secs_f64();
    let sim_started = Instant::now();

    // The PFS interference processes never terminate, so advance the
    // clock in slices and stop as soon as every workload process has
    // finished (the workload, not the background noise, defines the run).
    let slice =
        SimDuration::from_secs_f64((wf.frames as f64 * period.as_secs_f64()).max(1.0) / 4.0);
    let hard_stop = SimTime::from_nanos(
        ((wf.frames + 16) as f64 * period.as_secs_f64().max(0.001) * 400.0 * 1e9) as u64,
    );
    let mut deadline = SimTime::ZERO + slice;
    let report = loop {
        let report = sim.run_until(deadline);
        let done = prod_handles.iter().all(|h| h.is_finished())
            && cons_handles.iter().all(|h| h.is_finished());
        if done {
            break report;
        }
        assert!(
            deadline < hard_stop,
            "workload failed to finish by the hard stop — deadlock?"
        );
        deadline += slice;
    };
    // Makespan = when the workload finished, not when the horizon cut
    // off the (never-terminating) background-interference processes.
    let mut makespan = SimTime::ZERO;
    let mut take = |h: simcore::JoinHandle<(Profile, SimTime)>| {
        let (p, done) = h.try_take().expect("process finished");
        makespan = makespan.max(done);
        p
    };
    let producers: Vec<Profile> = prod_handles.into_iter().map(&mut take).collect();
    let consumers: Vec<Profile> = cons_handles.into_iter().map(&mut take).collect();
    let mut staging_totals = StagingTotals::default();
    let mut stream_totals = StreamTotals::default();
    for svc in &stream_services {
        stream_totals.absorb(&svc.stats());
    }
    let mut fault_totals = FaultTotals::default();
    for mgr in staging_mgrs.iter().flatten() {
        let s = mgr.stats();
        staging_totals.absorb(&s);
        fault_totals.frames_lost += s.frames_lost;
        fault_totals.republished_frames += s.republished_frames;
        // Retention invariant: nothing retires before every registered
        // consumer acknowledged it (cheap; guards every study we run).
        for r in mgr.retire_log() {
            assert_eq!(
                r.acks_seen, r.required_acks,
                "frame {} retired before all acks",
                r.path
            );
        }
    }
    if let Some((board, _)) = &fault_board {
        let s = board.stats();
        fault_totals.injected = s.injected;
        fault_totals.crashes = s.crashes;
        fault_totals.restarts = s.restarts;
        fault_totals.kvs_shard_crashes = s.kvs_shard_crashes;
        let t = tp.stats();
        fault_totals.rpc_retries = t.rpc_retries;
        fault_totals.rpc_giveups = t.rpc_giveups;
        fault_totals.retry_backoff_secs = SimDuration::from_nanos(t.retry_backoff_ns).as_secs_f64();
        let sum = |key: &str| -> u64 {
            producers
                .iter()
                .chain(consumers.iter())
                .map(|p| p.sum_metric(key))
                .sum::<f64>()
                .round() as u64
        };
        fault_totals.produce_outer_retries = sum("produce_outer_retries");
        fault_totals.consume_outer_retries = sum("consume_outer_retries");
        fault_totals.produce_failures = sum("produce_failures");
        fault_totals.consume_failures = sum("consume_failures");
        fault_totals.frames_lost_observed = sum("frames_lost_observed");
    }
    let mut kvs_totals = KvsTotals::default();
    if let Some(mesh) = &kvs_mesh {
        kvs_totals.shards = mesh.shards();
        kvs_totals.replication = mesh.topology().replication();
        for s in 0..mesh.shards() {
            kvs_totals.absorb(&mesh.shard_stats(s));
        }
    } else if let Some(srv) = &kvs_server {
        kvs_totals.shards = 1;
        kvs_totals.replication = 1;
        kvs_totals.absorb(&srv.stats());
    }
    drop(kvs_server);
    drop(kvs_mesh);
    // Worker-invariant per-shard load summary, read out before the
    // arena teardown clears the counters.
    let shard_load = instrument::ShardLoad::from_stats(&sim.shard_stats());
    // Recover the executor allocations for the next warm run. Pending
    // background tasks and their timers drop here exactly as dropping
    // the Sim would drop them (the substrates hold weak Ctx handles, so
    // the core's strong count is already down to this one Sim).
    let arena = sim.into_arena();
    RunOutput {
        metrics: RunMetrics {
            producers,
            consumers,
            makespan,
            events: report.events_processed,
            staging: staging_totals,
            streaming: stream_totals,
            faults: fault_totals,
            kvs: kvs_totals,
        },
        timings: RunTimings {
            setup_secs,
            sim_secs: sim_started.elapsed().as_secs_f64(),
            shard_load: Some(shard_load),
        },
        arena,
    }
}

/// Execute a full study (all repetitions, rayon-parallel) and reduce it
/// to a [`crate::report::StudyReport`].
pub fn run_study(study: &StudyConfig) -> crate::report::StudyReport {
    let runs: Vec<RunMetrics> = (0..study.repetitions)
        .into_par_iter()
        .map(|rep| run_once(&study.workflow, &study.calibration, study.seed + rep as u64))
        .collect();
    crate::report::StudyReport::from_runs(&study.workflow, &runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use mdsim::Model;

    fn small(solution: Solution, pairs: u32, placement: Placement) -> WorkflowConfig {
        WorkflowConfig::new(solution, pairs, placement).with_frames(6)
    }

    #[test]
    fn dyad_single_node_completes() {
        let cal = Calibration::quiet();
        let wf = small(Solution::Dyad, 2, Placement::SingleNode);
        let m = run_once(&wf, &cal, 1);
        assert_eq!(m.producers.len(), 2);
        assert_eq!(m.consumers.len(), 2);
        // 6 frames at ~0.82 s plus pipeline drain.
        let t = m.makespan.as_secs_f64();
        assert!(t > 4.9 && t < 8.0, "makespan {t}");
    }

    #[test]
    fn xfs_single_node_completes_serialized() {
        let cal = Calibration::quiet();
        let wf = small(Solution::Xfs, 1, Placement::SingleNode);
        let m = run_once(&wf, &cal, 1);
        // Coarse sync serializes: ~2 periods per frame.
        let t = m.makespan.as_secs_f64();
        assert!(t > 9.0 && t < 12.0, "makespan {t}");
    }

    #[test]
    fn lustre_two_nodes_completes() {
        let cal = Calibration::quiet();
        let wf = small(Solution::Lustre, 2, Placement::Split { pairs_per_node: 8 });
        let m = run_once(&wf, &cal, 1);
        assert_eq!(m.producers.len(), 2);
        let t = m.makespan.as_secs_f64();
        assert!(t > 9.0 && t < 13.0, "makespan {t}");
    }

    #[test]
    fn dyad_two_nodes_pipelines() {
        let cal = Calibration::quiet();
        let wf = small(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 });
        let m = run_once(&wf, &cal, 1);
        // Pipelined: ~1 period per frame (plus one-frame drain).
        let t = m.makespan.as_secs_f64();
        assert!(t > 4.9 && t < 8.0, "makespan {t}");
    }

    #[test]
    fn dyad_on_pfs_ablation_completes() {
        let cal = Calibration::quiet();
        let wf = small(
            Solution::DyadOnPfs,
            2,
            Placement::Split { pairs_per_node: 8 },
        );
        let m = run_once(&wf, &cal, 1);
        let t = m.makespan.as_secs_f64();
        // DYAD sync pipelines even over PFS storage.
        assert!(t > 4.9 && t < 8.5, "makespan {t}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cal = Calibration::corona();
        let wf = small(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 });
        let a = run_once(&wf, &cal, 42);
        let b = run_once(&wf, &cal, 42);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn bounded_staging_is_deterministic_and_exercises_the_lifecycle() {
        // Satellite of the staging tentpole: same seed + same budget ⇒
        // identical makespans AND identical eviction/spill history; and
        // a ~3-frame budget must actually trigger the evictor.
        let cal = Calibration::quiet();
        let budget = 3 * Model::Jac.frame_bytes();
        let wf = small(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 })
            .with_frames(12)
            .with_staging_budget(budget)
            .with_spill(true);
        let a = run_once(&wf, &cal, 9);
        let b = run_once(&wf, &cal, 9);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.staging.evicted_frames, b.staging.evicted_frames);
        assert_eq!(a.staging.spilled_frames, b.staging.spilled_frames);
        assert_eq!(a.staging.backpressure_stalls, b.staging.backpressure_stalls);
        assert!(
            a.staging.evicted_frames > 0,
            "a 3-frame budget never retired anything: {:?}",
            a.staging
        );
        assert_eq!(a.staging.acks_published, 2 * 12);
    }

    #[test]
    fn unbounded_staging_matches_legacy_dyad_timing() {
        // The default (no budget) must reproduce the paper's DYAD
        // numbers: no evictions, no stalls, same makespan window as
        // `dyad_two_nodes_pipelines`.
        let cal = Calibration::quiet();
        let wf = small(Solution::Dyad, 2, Placement::Split { pairs_per_node: 8 });
        let m = run_once(&wf, &cal, 1);
        assert_eq!(m.staging.evicted_frames, 0);
        assert_eq!(m.staging.spilled_frames, 0);
        assert_eq!(m.staging.backpressure_stalls, 0);
        let t = m.makespan.as_secs_f64();
        assert!(t > 4.9 && t < 8.0, "makespan {t}");
    }

    #[test]
    fn different_models_work() {
        let cal = Calibration::quiet();
        for model in [Model::ApoA1, Model::Stmv] {
            let wf = small(Solution::Dyad, 1, Placement::Split { pairs_per_node: 8 })
                .with_model(model)
                .with_frames(3);
            let m = run_once(&wf, &cal, 7);
            assert_eq!(m.producers.len(), 1);
        }
    }

    #[test]
    fn streaming_one_to_one_pipelines_like_dyad() {
        // fanout = fanin = 1 is the near-DYAD shape: same staging, same
        // KVS rendezvous, bounded window never binds at depth 4.
        let cal = Calibration::quiet();
        let wf = small(
            Solution::Streaming,
            2,
            Placement::Split { pairs_per_node: 8 },
        );
        let m = run_once(&wf, &cal, 1);
        assert_eq!(m.producers.len(), 2);
        assert_eq!(m.consumers.len(), 2);
        assert_eq!(m.streaming.steps_published, 2 * 6);
        assert_eq!(m.streaming.steps_consumed, 2 * 6);
        assert_eq!(m.streaming.bytes_published, m.streaming.bytes_consumed);
        let t = m.makespan.as_secs_f64();
        assert!(t > 4.9 && t < 8.0, "makespan {t}");
    }

    #[test]
    fn streaming_broadcast_fanout_delivers_to_every_subscriber() {
        let cal = Calibration::quiet();
        let wf = small(
            Solution::Streaming,
            1,
            Placement::Split { pairs_per_node: 8 },
        )
        .with_fanout(3);
        let m = run_once(&wf, &cal, 2);
        assert_eq!(m.producers.len(), 1);
        assert_eq!(m.consumers.len(), 3);
        // Every subscriber consumed every step.
        assert_eq!(m.streaming.steps_published, 6);
        assert_eq!(m.streaming.steps_consumed, 3 * 6);
        assert_eq!(m.streaming.bytes_consumed, 3 * m.streaming.bytes_published);
        // Staging retention honored the 3-ack contract (checked by the
        // retire-log assertion in run_prepared) and all acks landed.
        assert_eq!(m.staging.acks_published, 3 * 6);
    }

    #[test]
    fn streaming_partitioned_fanout_shares_the_step_sequence() {
        let cal = Calibration::quiet();
        let wf = small(
            Solution::Streaming,
            1,
            Placement::Split { pairs_per_node: 8 },
        )
        .with_fanout(3)
        .with_group_mode(streaming::GroupMode::Partitioned);
        let m = run_once(&wf, &cal, 3);
        // Each step consumed exactly once across the group.
        assert_eq!(m.streaming.steps_published, 6);
        assert_eq!(m.streaming.steps_consumed, 6);
        assert_eq!(m.streaming.bytes_consumed, m.streaming.bytes_published);
        assert_eq!(m.staging.acks_published, 6);
    }

    #[test]
    fn streaming_fanin_reduction_completes() {
        let cal = Calibration::quiet();
        let wf = small(
            Solution::Streaming,
            1,
            Placement::Split { pairs_per_node: 8 },
        )
        .with_fanin(4);
        let m = run_once(&wf, &cal, 4);
        assert_eq!(m.producers.len(), 4);
        assert_eq!(m.consumers.len(), 1);
        // The reducer consumed every leaf's steps; byte conservation
        // through the tree is asserted inside the reducer body.
        assert_eq!(m.streaming.steps_published, 4 * 6);
        assert_eq!(m.streaming.steps_consumed, 4 * 6);
        let reduced: f64 = m.consumers[0].sum_metric("reduced_steps");
        assert_eq!(reduced as u64, 6);
    }

    #[test]
    fn streaming_window_binds_and_is_deterministic() {
        // Window depth 1 with slow analytics forces publisher stalls;
        // the stall accounting must be seed-stable.
        let cal = Calibration::quiet();
        let wf = small(
            Solution::Streaming,
            2,
            Placement::Split { pairs_per_node: 8 },
        )
        .with_stream_window(1);
        let a = run_once(&wf, &cal, 5);
        let b = run_once(&wf, &cal, 5);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.streaming.window_stalls, b.streaming.window_stalls);
        assert_eq!(a.streaming.window_stall_secs, b.streaming.window_stall_secs);
    }

    #[test]
    fn streaming_step_aggregation_publishes_fewer_larger_steps() {
        let cal = Calibration::quiet();
        let wf = small(
            Solution::Streaming,
            1,
            Placement::Split { pairs_per_node: 8 },
        )
        .with_agg_frames(3);
        let m = run_once(&wf, &cal, 6);
        // 6 frames at 3 per step = 2 steps, all bytes conserved.
        assert_eq!(m.streaming.steps_published, 2);
        assert_eq!(m.streaming.steps_consumed, 2);
        assert_eq!(m.streaming.bytes_consumed, m.streaming.bytes_published);
    }

    #[test]
    #[should_panic(expected = "XFS cannot move data between nodes")]
    fn xfs_multi_node_is_rejected() {
        let cal = Calibration::quiet();
        let wf = small(Solution::Xfs, 2, Placement::Split { pairs_per_node: 8 });
        let _ = run_once(&wf, &cal, 1);
    }
}

#[cfg(test)]
mod race_tests {
    use super::*;
    use crate::config::Placement;

    #[test]
    fn seed_sweep_single_node_dyad_never_corrupts() {
        // Regression for a race where a same-node consumer could observe
        // a frame file between the producer's create() and its final
        // write, reading a partial payload. The consumer asserts frame
        // integrity, so any corruption panics.
        let cal = Calibration::corona();
        let wf = WorkflowConfig::new(Solution::Dyad, 2, Placement::SingleNode).with_frames(20);
        for seed in 0..200 {
            let m = run_once(&wf, &cal, seed);
            assert_eq!(m.consumers.len(), 2, "seed {seed}");
        }
    }
}
