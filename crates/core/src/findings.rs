//! Programmatic checks of the paper's five findings against measured
//! study reports. Each check returns the supporting ratio so the `all`
//! regenerator can print paper-vs-measured evidence.

use crate::report::{speedup, StudyReport};

/// Outcome of checking one finding.
#[derive(Debug, Clone)]
pub struct FindingCheck {
    /// Finding number (1-5).
    pub number: u32,
    /// The paper's statement, abbreviated.
    pub statement: &'static str,
    /// Whether our measurements support it.
    pub holds: bool,
    /// Human-readable evidence.
    pub evidence: String,
}

/// Finding 1: on a single node, adaptive synchronization (DYAD) wins
/// overall despite slightly slower production.
///
/// Inputs: single-node DYAD and XFS reports at equal pairs.
pub fn finding1(dyad: &StudyReport, xfs: &StudyReport) -> FindingCheck {
    let prod_penalty = speedup(dyad.production_total(), xfs.production_total());
    let cons_speedup = speedup(xfs.consumption_total(), dyad.consumption_total());
    let holds = prod_penalty >= 1.0 && cons_speedup > 10.0;
    FindingCheck {
        number: 1,
        statement: "adaptive sync wins overall on one node despite slower production",
        holds,
        evidence: format!(
            "DYAD production {prod_penalty:.2}x slower (paper: 1.4x); \
             consumption {cons_speedup:.1}x faster (paper: 192.9x)"
        ),
    }
}

/// Finding 2: direct two-node network communication barely affects DYAD.
///
/// Inputs: DYAD single-node and two-node reports at equal pairs.
pub fn finding2(dyad_1node: &StudyReport, dyad_2node: &StudyReport) -> FindingCheck {
    let prod_ratio = dyad_2node.production_total() / dyad_1node.production_total().max(1e-12);
    let cons_ratio = dyad_2node.consumption_total() / dyad_1node.consumption_total().max(1e-12);
    // "little effect": within ~2.5x despite moving to the network.
    let holds = prod_ratio < 2.5 && cons_ratio < 2.5;
    FindingCheck {
        number: 2,
        statement: "small-scale distributed network movement has little effect on DYAD",
        holds,
        evidence: format!(
            "two-node vs one-node DYAD: production {prod_ratio:.2}x, consumption {cons_ratio:.2}x"
        ),
    }
}

/// Finding 3: at large scale, optimizing both movement and sync (DYAD)
/// wins end to end.
///
/// Inputs: DYAD and Lustre reports at the largest ensemble.
pub fn finding3(dyad: &StudyReport, lustre: &StudyReport) -> FindingCheck {
    let prod = speedup(lustre.production_total(), dyad.production_total());
    let cons = speedup(lustre.consumption_total(), dyad.consumption_total());
    let holds = prod > 2.0 && cons > 50.0;
    FindingCheck {
        number: 3,
        statement: "optimizing movement AND sync wins at large scale",
        holds,
        evidence: format!(
            "DYAD vs Lustre at scale: production {prod:.1}x (paper: 5.3x), \
             overall consumption {cons:.1}x (paper: 192.0x)"
        ),
    }
}

/// Finding 4: local resources + efficient protocols scale better as the
/// model (data size) grows.
///
/// Inputs: (DYAD, Lustre) report pairs ordered by model size.
pub fn finding4(by_model: &[(StudyReport, StudyReport)]) -> FindingCheck {
    let gaps: Vec<f64> = by_model
        .iter()
        .map(|(d, l)| speedup(l.production_movement.mean, d.production_movement.mean))
        .collect();
    let holds = gaps.len() >= 2 && gaps.last().unwrap() > gaps.first().unwrap();
    FindingCheck {
        number: 4,
        statement: "node-local + RDMA scales better as frame size grows",
        holds,
        evidence: format!(
            "production-movement gap by model (small→large): {:?} (paper: 2.1x→6.3x)",
            gaps.iter().map(|g| format!("{g:.1}x")).collect::<Vec<_>>()
        ),
    }
}

/// Finding 5: minimizing synchronization matters more as the transfer
/// frequency drops (stride grows).
///
/// Inputs: (DYAD, Lustre) report pairs ordered by stride.
pub fn finding5(by_stride: &[(StudyReport, StudyReport)]) -> FindingCheck {
    let gaps: Vec<f64> = by_stride
        .iter()
        .map(|(d, l)| speedup(l.consumption_total(), d.consumption_total()))
        .collect();
    let holds = gaps.len() >= 2 && gaps.last().unwrap() > gaps.first().unwrap();
    FindingCheck {
        number: 5,
        statement: "minimizing sync is critical as transfer frequency decreases",
        holds,
        evidence: format!(
            "overall consumption gap by stride (high→low frequency): {:?} (paper: widening, 13.0x→192.2x for STMV)",
            gaps.iter().map(|g| format!("{g:.0}x")).collect::<Vec<_>>()
        ),
    }
}
