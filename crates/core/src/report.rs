//! Reduction of raw profiles into the paper's reporting quantities:
//! per-frame production and consumption time, each split into **data
//! movement** and **idle (synchronization)** time, with mean/std across
//! repetitions — the red-striped and blue-striped bars of Figures 5-8
//! and 11-12.

use instrument::Profile;
use serde::Serialize;
use simcore::stats::OnlineStats;

use crate::config::{Solution, WorkflowConfig};
use crate::runner::RunMetrics;

/// Movement/idle split, in seconds per frame per process.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Breakdown {
    /// Time writing/reading/transferring data.
    pub movement: f64,
    /// Time waiting on synchronization.
    pub idle: f64,
}

impl Breakdown {
    /// movement + idle.
    pub fn total(&self) -> f64 {
        self.movement + self.idle
    }
}

/// One repetition's reduced numbers.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RunBreakdown {
    /// Producer-side split.
    pub production: Breakdown,
    /// Consumer-side split.
    pub consumption: Breakdown,
    /// Simulated makespan of the repetition, seconds.
    pub makespan: f64,
    /// Staging-lifecycle counters (DYAD/streaming only; zero otherwise).
    pub staging: crate::runner::StagingTotals,
    /// Streaming data-plane counters (zero for the other solutions).
    pub streaming: crate::runner::StreamTotals,
    /// Per-group synchronization latency, s/frame (streaming only): the
    /// subscriber-side `stream_sync` share of consumption.
    pub group_sync_secs: f64,
    /// Fault-injection and recovery counters (zero when disabled).
    pub faults: crate::runner::FaultTotals,
}

/// Sum the inclusive seconds of `path` over a merged profile.
fn secs(profile: &Profile, path: &[&str]) -> f64 {
    profile.inclusive(path).as_secs_f64()
}

/// Reduce one run. `per_frame` = pairs × frames, the normalization the
/// paper applies to its bar charts.
pub fn reduce_run(wf: &WorkflowConfig, run: &RunMetrics) -> RunBreakdown {
    let per_frame = (wf.pairs as f64) * (wf.frames as f64);
    let mut prod = Profile::default();
    for p in &run.producers {
        prod.merge(p);
    }
    let mut cons = Profile::default();
    for c in &run.consumers {
        cons.merge(c);
    }
    let production;
    let consumption;
    let mut group_sync_secs = 0.0;
    match wf.solution {
        Solution::Dyad => {
            // Staging backpressure is synchronization (the producer
            // waits on the evictor), not data movement.
            let backpressure = secs(&prod, &["dyad_produce", "staging_backpressure"]);
            production = Breakdown {
                movement: (secs(&prod, &["dyad_produce"]) - backpressure) / per_frame,
                idle: backpressure / per_frame,
            };
            consumption = Breakdown {
                movement: (secs(&cons, &["dyad_consume", "dyad_get_data"])
                    + secs(&cons, &["dyad_consume", "dyad_cons_store"])
                    + secs(&cons, &["dyad_consume", "dyad_pfs_fallback"])
                    + secs(&cons, &["dyad_consume", "read_single_buf"]))
                    / per_frame,
                idle: (secs(&cons, &["dyad_consume", "dyad_fetch"])
                    + secs(&cons, &["dyad_consume", "dyad_sync_flock"]))
                    / per_frame,
            };
        }
        Solution::DyadOnPfs => {
            production = Breakdown {
                movement: secs(&prod, &["dyad_produce"]) / per_frame,
                idle: 0.0,
            };
            consumption = Breakdown {
                movement: secs(&cons, &["dyad_consume", "read_single_buf"]) / per_frame,
                idle: secs(&cons, &["dyad_consume", "dyad_fetch"]) / per_frame,
            };
        }
        Solution::Streaming => {
            // Window stalls and staging backpressure are synchronization
            // (the publisher waits on subscriber acks / the evictor),
            // not data movement.
            let window_wait = secs(&prod, &["stream_publish", "stream_window_wait"]);
            let backpressure = secs(&prod, &["stream_publish", "staging_backpressure"]);
            production = Breakdown {
                movement: (secs(&prod, &["stream_publish"]) - window_wait - backpressure)
                    / per_frame,
                idle: (window_wait + backpressure) / per_frame,
            };
            group_sync_secs = secs(&cons, &["stream_consume", "stream_sync"]) / per_frame;
            consumption = Breakdown {
                movement: (secs(&cons, &["stream_consume", "stream_get_data"])
                    + secs(&cons, &["stream_consume", "stream_cons_store"])
                    + secs(&cons, &["stream_consume", "stream_pfs_fallback"])
                    + secs(&cons, &["stream_consume", "read_single_buf"]))
                    / per_frame,
                idle: group_sync_secs,
            };
        }
        Solution::Xfs | Solution::Lustre => {
            production = Breakdown {
                movement: secs(&prod, &["produce", "write_single_buf"]) / per_frame,
                idle: secs(&prod, &["produce", "explicit_sync"]) / per_frame,
            };
            consumption = Breakdown {
                movement: secs(&cons, &["consume", "read_single_buf"]) / per_frame,
                idle: secs(&cons, &["consume", "explicit_sync"]) / per_frame,
            };
        }
    }
    RunBreakdown {
        production,
        consumption,
        makespan: run.makespan.as_secs_f64(),
        staging: run.staging,
        streaming: run.streaming,
        group_sync_secs,
        faults: run.faults,
    }
}

/// Mean and sample standard deviation of a quantity across repetitions.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MeanStd {
    /// Mean across repetitions.
    pub mean: f64,
    /// Sample standard deviation across repetitions.
    pub std: f64,
}

impl MeanStd {
    fn from_samples(xs: impl Iterator<Item = f64>) -> MeanStd {
        let mut s = OnlineStats::new();
        for x in xs {
            s.push(x);
        }
        MeanStd {
            mean: s.mean(),
            std: s.std_dev(),
        }
    }
}

/// The reduced study: what one bar group of a paper figure reports.
#[derive(Debug, Clone, Serialize)]
pub struct StudyReport {
    /// Configuration the study ran.
    pub workflow: WorkflowConfig,
    /// Production data-movement time, s/frame.
    pub production_movement: MeanStd,
    /// Production idle time, s/frame.
    pub production_idle: MeanStd,
    /// Consumption data-movement time, s/frame.
    pub consumption_movement: MeanStd,
    /// Consumption idle time, s/frame.
    pub consumption_idle: MeanStd,
    /// Makespan, seconds.
    pub makespan: MeanStd,
    /// Frames retired by the staging evictor (per repetition).
    pub evicted_frames: MeanStd,
    /// Frames spilled from NVMe to the PFS (per repetition).
    pub spilled_frames: MeanStd,
    /// Producer stalls at the staging high watermark (per repetition).
    pub backpressure_stalls: MeanStd,
    /// Seconds producers spent stalled (per repetition).
    pub backpressure_stall_secs: MeanStd,
    /// Consumes served from a spilled PFS copy (per repetition).
    pub pfs_fallbacks: MeanStd,
    /// Streaming window stalls (per repetition; zero for non-streaming).
    pub window_stalls: MeanStd,
    /// Seconds publishers spent stalled on a full window (per
    /// repetition).
    pub window_stall_secs: MeanStd,
    /// Per-group streaming sync latency, s/frame (per repetition).
    pub group_sync_secs: MeanStd,
    /// Window-slot ack entries reclaimed from crashed subscribers (per
    /// repetition).
    pub slots_reclaimed: MeanStd,
    /// Fault windows injected (per repetition; zero when disabled).
    pub fault_injections: MeanStd,
    /// Transport RPC retry attempts (per repetition).
    pub rpc_retries: MeanStd,
    /// Seconds spent in retry backoff — the recovery-time half of the
    /// movement/recovery split for faulted sweeps (per repetition).
    pub recovery_secs: MeanStd,
    /// Staged frames lost to crashes (per repetition).
    pub frames_lost: MeanStd,
    /// Per-repetition numbers (for variability plots).
    pub runs: Vec<RunBreakdown>,
}

impl StudyReport {
    /// Reduce a set of repetitions.
    pub fn from_runs(wf: &WorkflowConfig, runs: &[RunMetrics]) -> StudyReport {
        let reduced: Vec<RunBreakdown> = runs.iter().map(|r| reduce_run(wf, r)).collect();
        StudyReport {
            workflow: wf.clone(),
            production_movement: MeanStd::from_samples(
                reduced.iter().map(|r| r.production.movement),
            ),
            production_idle: MeanStd::from_samples(reduced.iter().map(|r| r.production.idle)),
            consumption_movement: MeanStd::from_samples(
                reduced.iter().map(|r| r.consumption.movement),
            ),
            consumption_idle: MeanStd::from_samples(reduced.iter().map(|r| r.consumption.idle)),
            makespan: MeanStd::from_samples(reduced.iter().map(|r| r.makespan)),
            evicted_frames: MeanStd::from_samples(
                reduced.iter().map(|r| r.staging.evicted_frames as f64),
            ),
            spilled_frames: MeanStd::from_samples(
                reduced.iter().map(|r| r.staging.spilled_frames as f64),
            ),
            backpressure_stalls: MeanStd::from_samples(
                reduced.iter().map(|r| r.staging.backpressure_stalls as f64),
            ),
            backpressure_stall_secs: MeanStd::from_samples(
                reduced.iter().map(|r| r.staging.backpressure_stall_secs),
            ),
            pfs_fallbacks: MeanStd::from_samples(
                reduced.iter().map(|r| r.staging.pfs_fallbacks as f64),
            ),
            window_stalls: MeanStd::from_samples(
                reduced.iter().map(|r| r.streaming.window_stalls as f64),
            ),
            window_stall_secs: MeanStd::from_samples(
                reduced.iter().map(|r| r.streaming.window_stall_secs),
            ),
            group_sync_secs: MeanStd::from_samples(reduced.iter().map(|r| r.group_sync_secs)),
            slots_reclaimed: MeanStd::from_samples(
                reduced.iter().map(|r| r.streaming.slots_reclaimed as f64),
            ),
            fault_injections: MeanStd::from_samples(
                reduced.iter().map(|r| r.faults.injected as f64),
            ),
            rpc_retries: MeanStd::from_samples(reduced.iter().map(|r| r.faults.rpc_retries as f64)),
            recovery_secs: MeanStd::from_samples(
                reduced.iter().map(|r| r.faults.retry_backoff_secs),
            ),
            frames_lost: MeanStd::from_samples(reduced.iter().map(|r| r.faults.frames_lost as f64)),
            runs: reduced,
        }
    }

    /// Mean total production time (movement + idle), s/frame.
    pub fn production_total(&self) -> f64 {
        self.production_movement.mean + self.production_idle.mean
    }

    /// Mean total consumption time (movement + idle), s/frame.
    pub fn consumption_total(&self) -> f64 {
        self.consumption_movement.mean + self.consumption_idle.mean
    }

    /// JSON for EXPERIMENTS.md regeneration.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Paper-style comparison: how many times faster is `a` than `b`.
pub fn speedup(slower: f64, faster: f64) -> f64 {
    if faster <= 0.0 {
        f64::INFINITY
    } else {
        slower / faster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let m = MeanStd::from_samples([1.0, 2.0, 3.0].into_iter());
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_handles_zero() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
        assert!(speedup(1.0, 0.0).is_infinite());
    }
}
