//! # streaming — an ADIOS2 SST-style streaming data plane
//!
//! The paper's workflows move frames through files (XFS, Lustre) or the
//! DYAD managed directory in a strict 1:1 producer→consumer shape.
//! ROADMAP item 3 points past that, following Poeschel et al.
//! (openPMD/ADIOS2 streaming) and Eisenhauer et al. (SST): a *streaming*
//! backend where producers publish **steps** and subscriber groups pull
//! them over the fabric, with flow control instead of unbounded staging.
//!
//! This crate is that backend, built as a peer of [`dyad`] on the same
//! substrates:
//!
//! * **Publishers** aggregate frames into steps, write them to
//!   node-local storage, and publish `(owner, size)` step metadata to
//!   the [`kvs`] — the same rendezvous path DYAD uses, so the two
//!   backends differ only in protocol, not in plumbing.
//! * A **bounded in-flight window** ([`StreamWindow`]) backpressures the
//!   publisher: at most `window` unacknowledged steps may be open.
//!   Release rides the *existing* staging consumption-ack keys
//!   ([`staging::ack_key`]): subscribers commit acks to the KVS for
//!   retention anyway, and the publisher watches those same keys, so
//!   there is no second ack channel to leak slots under faults.
//! * **Subscriber groups** ([`GroupMode`]) consume each step either
//!   broadcast (every subscriber gets every step) or partitioned (each
//!   step goes to exactly one subscriber, round-robin).
//! * **Reduction trees** ([`ReductionTree`]) give K→1 fan-in a
//!   deterministic pairwise combine schedule with byte conservation.
//! * Under a fault plan, a crashed subscriber's window slots can be
//!   **reclaimed** (`reclaim_on_crash`) instead of head-of-line
//!   stalling the publisher until the restart.
//!
//! Every phase is wrapped in [`instrument`] regions (`stream_publish`,
//! `stream_window_wait`, `stream_sync`, `stream_get_data`, ...) so the
//! report layer can split movement from idle time exactly as it does
//! for the other three backends.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use cluster::NodeId;
use faults::{FaultBoard, RetryPolicy};
use instrument::Recorder;
use kvs::KvsHandle;
use localfs::{FsResult, LocalFs, LockKind};
use pfs::PfsClient;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simcore::resource::FifoResource;
use simcore::{Ctx, SimDuration};
use staging::{ack_key, StagingManager};
use transport::{AmId, Endpoint, LocalBoxFuture, Payload, Transport, TransportError};

pub use staging::{FrameLocation, FrameMeta};

/// The AM id of the per-node stream data service ("ST").
pub const STREAM_AM: AmId = AmId(0x5354);

/// Root of the stream-managed directory on every node's local fs.
pub const DEFAULT_MANAGED_DIR: &str = "/stream";

// ---------------------------------------------------------------------------
// Subscriber groups
// ---------------------------------------------------------------------------

/// How a subscriber group shares the step sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupMode {
    /// Every subscriber receives every step (K-way in-situ analytics).
    Broadcast,
    /// Each step is delivered to exactly one subscriber, round-robin by
    /// step index (work sharing).
    Partitioned,
}

impl GroupMode {
    /// Stable lowercase name (CLI/serialization).
    pub fn name(self) -> &'static str {
        match self {
            GroupMode::Broadcast => "broadcast",
            GroupMode::Partitioned => "partitioned",
        }
    }

    /// Parse [`GroupMode::name`].
    pub fn parse(s: &str) -> Option<GroupMode> {
        match s {
            "broadcast" => Some(GroupMode::Broadcast),
            "partitioned" => Some(GroupMode::Partitioned),
            _ => None,
        }
    }
}

/// The subscriber index a partitioned step is assigned to.
pub fn partition_assignee(step: u64, fanout: u32) -> u32 {
    assert!(fanout >= 1, "empty subscriber group");
    (step % u64::from(fanout)) as u32
}

/// Whether `subscriber` (of `fanout` group members) receives `step`.
pub fn delivers_to(mode: GroupMode, step: u64, subscriber: u32, fanout: u32) -> bool {
    assert!(subscriber < fanout, "subscriber index out of group");
    match mode {
        GroupMode::Broadcast => true,
        GroupMode::Partitioned => partition_assignee(step, fanout) == subscriber,
    }
}

// ---------------------------------------------------------------------------
// Bounded in-flight window
// ---------------------------------------------------------------------------

/// One acknowledging subscriber of an open step: the staging consumer id
/// it acks with, and the node it runs on (for crash reclaim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamAcker {
    /// Staging consumer id the subscriber publishes acks under.
    pub consumer: String,
    /// Node the subscriber runs on.
    pub node: u32,
}

/// Waiters of one open (published but not fully acked) step.
#[derive(Debug, Clone)]
struct PendingStep {
    /// Managed path the step was published under.
    path: String,
    /// consumer id → node, for every ack still outstanding.
    waiting: BTreeMap<String, u32>,
}

/// The publisher-side bounded in-flight window: at most `capacity`
/// steps may be open (published but not acknowledged by every assigned
/// subscriber) at once. Pure bookkeeping — the async machinery around
/// it lives in [`StreamPublisher`] — so the safety invariant
/// (`in_flight() <= capacity()` always) is property-testable without a
/// simulator.
#[derive(Debug, Clone)]
pub struct StreamWindow {
    capacity: usize,
    pending: BTreeMap<u64, PendingStep>,
    peak: usize,
}

impl StreamWindow {
    /// A window admitting `capacity >= 1` concurrent open steps.
    pub fn new(capacity: usize) -> StreamWindow {
        assert!(capacity >= 1, "window capacity must be at least 1");
        StreamWindow {
            capacity,
            pending: BTreeMap::new(),
            peak: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently open steps.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of open steps over the window's lifetime.
    pub fn peak_in_flight(&self) -> usize {
        self.peak
    }

    /// Whether another step may open without violating the bound.
    pub fn can_open(&self) -> bool {
        self.pending.len() < self.capacity
    }

    /// Open `step` (published under `path`), waiting on `ackers`.
    /// Panics if the window is full or the step is already open — the
    /// publisher must gate on [`StreamWindow::can_open`] first.
    pub fn open(&mut self, step: u64, path: &str, ackers: &[StreamAcker]) {
        assert!(
            self.can_open(),
            "window overflow: opening step {step} with {} already in flight",
            self.pending.len()
        );
        assert!(!ackers.is_empty(), "step {step} has no acking subscriber");
        let waiting: BTreeMap<String, u32> = ackers
            .iter()
            .map(|a| (a.consumer.clone(), a.node))
            .collect();
        let prev = self.pending.insert(
            step,
            PendingStep {
                path: path.to_string(),
                waiting,
            },
        );
        assert!(prev.is_none(), "step {step} opened twice");
        self.peak = self.peak.max(self.pending.len());
    }

    /// Record `consumer`'s ack of `step`. Returns `true` when this ack
    /// freed the step's slot. Unknown steps and duplicate acks are
    /// ignored (acks are idempotent KVS keys).
    pub fn ack(&mut self, step: u64, consumer: &str) -> bool {
        let Some(p) = self.pending.get_mut(&step) else {
            return false;
        };
        p.waiting.remove(consumer);
        if p.waiting.is_empty() {
            self.pending.remove(&step);
            true
        } else {
            false
        }
    }

    /// Forget `step` entirely: a fallible publish failed before the
    /// step became consumable, so no ack will ever arrive for it.
    /// Returns whether the step was open.
    pub fn abort(&mut self, step: u64) -> bool {
        self.pending.remove(&step).is_some()
    }

    /// Drop every outstanding ack whose node is reported down, freeing
    /// any step left with no waiters. Returns the number of waiter
    /// entries reclaimed (the subscriber-crash recovery path).
    pub fn reclaim_down(&mut self, down: impl Fn(u32) -> bool) -> u64 {
        let mut reclaimed = 0;
        let steps: Vec<u64> = self.pending.keys().copied().collect();
        for step in steps {
            let p = self.pending.get_mut(&step).expect("step present");
            let before = p.waiting.len();
            p.waiting.retain(|_, node| !down(*node));
            reclaimed += (before - p.waiting.len()) as u64;
            if p.waiting.is_empty() {
                self.pending.remove(&step);
            }
        }
        reclaimed
    }

    /// Every outstanding `(step, path, waiters)`, oldest step first.
    pub fn entries(&self) -> Vec<(u64, String, Vec<StreamAcker>)> {
        self.pending
            .iter()
            .map(|(step, p)| {
                let waiters = p
                    .waiting
                    .iter()
                    .map(|(c, n)| StreamAcker {
                        consumer: c.clone(),
                        node: *n,
                    })
                    .collect();
                (*step, p.path.clone(), waiters)
            })
            .collect()
    }

    /// The oldest step's first outstanding `(step, path, consumer)` —
    /// the head-of-line ack the publisher parks on when full.
    pub fn oldest_waiter(&self) -> Option<(u64, String, String)> {
        self.pending.iter().next().map(|(step, p)| {
            let consumer = p.waiting.keys().next().expect("open step has waiters");
            (*step, p.path.clone(), consumer.clone())
        })
    }
}

// ---------------------------------------------------------------------------
// Reduction tree
// ---------------------------------------------------------------------------

/// A deterministic pairwise (binary) reduction schedule over K leaves,
/// used by the K→1 fan-in reducer: stage s merges leaves `2^s` apart,
/// so leaf 0 accumulates everything in `ceil(log2 K)` stages.
#[derive(Debug, Clone)]
pub struct ReductionTree {
    leaves: usize,
    stages: Vec<Vec<(usize, usize)>>,
}

impl ReductionTree {
    /// The canonical binary tree over `leaves >= 1` inputs.
    pub fn new(leaves: usize) -> ReductionTree {
        assert!(leaves >= 1, "reduction over zero leaves");
        let mut stages = Vec::new();
        let mut stride = 1;
        while stride < leaves {
            let mut merges = Vec::new();
            let mut i = 0;
            while i + stride < leaves {
                merges.push((i, i + stride));
                i += 2 * stride;
            }
            stages.push(merges);
            stride *= 2;
        }
        ReductionTree { leaves, stages }
    }

    /// Number of leaf inputs.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// The merge schedule: `stages()[s]` is the list of `(dst, src)`
    /// merges of stage `s`; merges within a stage are independent.
    pub fn stages(&self) -> &[Vec<(usize, usize)>] {
        &self.stages
    }

    /// Tree depth (`ceil(log2 leaves)`).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total pairwise merges (`leaves - 1`).
    pub fn merges(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Fold leaf payload sizes through the schedule, asserting that
    /// every leaf is consumed exactly once, and return the root size.
    /// Byte conservation — the result always equals the sum of the
    /// inputs — is pinned by a proptest.
    pub fn combined_bytes(&self, leaf_bytes: &[u64]) -> u64 {
        assert_eq!(leaf_bytes.len(), self.leaves, "leaf count mismatch");
        let mut sizes = leaf_bytes.to_vec();
        let mut alive = vec![true; self.leaves];
        for stage in &self.stages {
            for &(dst, src) in stage {
                assert!(alive[dst] && alive[src], "merge of a consumed leaf");
                sizes[dst] += sizes[src];
                alive[src] = false;
            }
        }
        assert_eq!(
            alive.iter().filter(|a| **a).count(),
            1,
            "schedule left more than one root"
        );
        assert!(alive[0], "root must be leaf 0");
        sizes[0]
    }
}

// ---------------------------------------------------------------------------
// Errors and policy
// ---------------------------------------------------------------------------

/// Errors surfaced by the fallible publish/consume paths under a fault
/// plan. Without faults these paths cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Every copy of the step is gone (publisher node crashed before
    /// the step could be re-homed).
    StepLost {
        /// Managed path of the lost step.
        path: String,
    },
    /// A transport-level failure survived the retry budget.
    Transport(TransportError),
    /// Local storage kept failing while writing the step.
    Storage {
        /// Managed path of the step being written.
        path: String,
    },
    /// The step could not be resolved to a live copy within the
    /// retry budget.
    Unresolvable {
        /// Managed path of the step.
        path: String,
        /// Fetch attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::StepLost { path } => write!(f, "step {path} lost (no surviving copy)"),
            StreamError::Transport(e) => write!(f, "transport failure: {e}"),
            StreamError::Storage { path } => write!(f, "local storage failure writing {path}"),
            StreamError::Unresolvable { path, attempts } => {
                write!(f, "step {path} unresolvable after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<TransportError> for StreamError {
    fn from(e: TransportError) -> Self {
        StreamError::Transport(e)
    }
}

/// Retry policy shaping the streaming recovery loops; same envelope as
/// DYAD's (outages last milliseconds-to-seconds).
pub fn stream_retry_policy() -> RetryPolicy {
    RetryPolicy {
        base: SimDuration::from_millis(1),
        cap: SimDuration::from_millis(500),
        max_attempts: 12,
        jitter_frac: 0.25,
        attempt_timeout: SimDuration::from_millis(100),
    }
}

// ---------------------------------------------------------------------------
// Spec + stats
// ---------------------------------------------------------------------------

/// Streaming tuning parameters.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Root of the stream-managed directory on every node's local fs.
    pub managed_dir: String,
    /// Bounded in-flight window: max unacked steps per publisher.
    pub window: u32,
    /// CPU overhead of step assembly + metadata publication per step
    /// (the SST marshaling cost).
    pub publish_overhead: SimDuration,
    /// Service threads in the per-node step service.
    pub service_threads: u64,
    /// Request-processing time in the step service (excluding I/O).
    pub service_time: SimDuration,
    /// Enable the warm lookup fast path (disable to force KVS waits on
    /// every access).
    pub warm_sync: bool,
    /// Under a fault plan, reclaim window slots held by subscribers on
    /// crashed nodes instead of head-of-line stalling until restart.
    pub reclaim_on_crash: bool,
    /// Poll interval of the faulted window-stall loop (the infallible
    /// path parks on a KVS watch instead and never polls).
    pub stall_poll: SimDuration,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            managed_dir: DEFAULT_MANAGED_DIR.to_string(),
            window: 4,
            publish_overhead: SimDuration::from_micros(40),
            service_threads: 4,
            service_time: SimDuration::from_micros(10),
            warm_sync: true,
            reclaim_on_crash: true,
            stall_poll: SimDuration::from_millis(2),
        }
    }
}

/// Operation counters for one node's stream service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Steps published through this service.
    pub steps_published: u64,
    /// Steps consumed through this service.
    pub steps_consumed: u64,
    /// Bytes published.
    pub bytes_published: u64,
    /// Bytes consumed.
    pub bytes_consumed: u64,
    /// Publishes that found the window full and had to wait.
    pub window_stalls: u64,
    /// Total nanoseconds spent stalled on a full window.
    pub window_stall_ns: u64,
    /// Outstanding-ack entries reclaimed from crashed subscribers.
    pub slots_reclaimed: u64,
    /// Window ack-refresh sweeps (KVS ack-key reads).
    pub ack_refreshes: u64,
    /// Remote step fetches served *by* this node (owner side).
    pub fetches_served: u64,
    /// Consumptions that parked in a KVS watch (cold syncs).
    pub cold_syncs: u64,
    /// Consumptions satisfied by the warm fast path.
    pub warm_syncs: u64,
    /// Consumptions that found the data already node-local.
    pub local_hits: u64,
}

struct ServiceInner {
    stats: StreamStats,
    dirs_made: std::collections::HashSet<String>,
}

// ---------------------------------------------------------------------------
// Per-node service
// ---------------------------------------------------------------------------

/// The per-node stream service: owns the node's managed directory,
/// serves remote step-fetch requests, and opens publisher/subscriber
/// sessions.
pub struct StreamService {
    ctx: Ctx,
    node: NodeId,
    fs: LocalFs,
    kvs: KvsHandle,
    ep: Endpoint,
    spec: Rc<StreamSpec>,
    staging: Option<Rc<StagingManager>>,
    inner: Rc<RefCell<ServiceInner>>,
}

impl StreamService {
    /// Start the stream service on `node` without staging retention
    /// (unit tests; the runner always passes a staging manager).
    pub fn start(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        fs: LocalFs,
        kvs: impl Into<KvsHandle>,
        spec: StreamSpec,
    ) -> Rc<StreamService> {
        Self::start_staged(ctx, tp, node, fs, kvs, spec, None)
    }

    /// Start the stream service on `node` under a [`StagingManager`]:
    /// publishes pass admission control and register in the staged-frame
    /// lifecycle; subscribers publish consumption acks that drive both
    /// retention *and* window release. Registers the data-service
    /// handler answering `stream_get_data` requests from other nodes.
    pub fn start_staged(
        ctx: &Ctx,
        tp: &Transport,
        node: NodeId,
        fs: LocalFs,
        kvs: impl Into<KvsHandle>,
        spec: StreamSpec,
        staging: Option<Rc<StagingManager>>,
    ) -> Rc<StreamService> {
        let spec = Rc::new(spec);
        let inner = Rc::new(RefCell::new(ServiceInner {
            stats: StreamStats::default(),
            dirs_made: std::collections::HashSet::new(),
        }));
        let service = FifoResource::new(ctx, spec.service_threads);
        let svc = Rc::new(StreamService {
            ctx: ctx.clone(),
            node,
            fs: fs.clone(),
            kvs: kvs.into(),
            ep: tp.endpoint(node),
            spec: spec.clone(),
            staging,
            inner: inner.clone(),
        });
        let hfs = fs;
        let hspec = spec;
        let hinner = inner;
        tp.register_bulk(
            node,
            STREAM_AM,
            Rc::new(move |hdr: Bytes, _payload: Payload| {
                let fs = hfs.clone();
                let spec = hspec.clone();
                let inner = hinner.clone();
                let service = service.clone();
                Box::pin(async move {
                    service.request(spec.service_time).await;
                    let path = String::from_utf8(hdr.to_vec()).expect("utf-8 path");
                    let data = match fs.open(&path).await {
                        Ok(fd) => {
                            let segs = fs.read_segments(fd).await.unwrap_or_default();
                            let _ = fs.close(fd).await;
                            segs
                        }
                        Err(_) => Vec::new(),
                    };
                    inner.borrow_mut().stats.fetches_served += 1;
                    (Bytes::new(), data)
                }) as LocalBoxFuture<(Bytes, Payload)>
            }),
        );
        svc
    }

    /// The node this service runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Operation counters.
    pub fn stats(&self) -> StreamStats {
        self.inner.borrow().stats
    }

    /// The managed path for a logical step name.
    pub fn managed_path(&self, name: &str) -> String {
        format!("{}/{}", self.spec.managed_dir, name.trim_start_matches('/'))
    }

    async fn ensure_dirs(&self, path: &str) {
        let Some(dir) = path.rsplit_once('/').map(|(d, _)| d.to_string()) else {
            return;
        };
        let need = !self.inner.borrow().dirs_made.contains(&dir);
        if need {
            let _ = self.fs.mkdir_p(&dir).await;
            self.inner.borrow_mut().dirs_made.insert(dir);
        }
    }

    /// Write a step to the managed directory with atomic tmp+rename
    /// publication; on failure the tmp file is removed so a retry
    /// starts clean.
    async fn write_step(&self, path: &str, step: Payload) -> FsResult<()> {
        self.ensure_dirs(path).await;
        let tmp = format!("{path}.tmp");
        let res: FsResult<()> = async {
            let fd = self.fs.create(&tmp).await?;
            for seg in step {
                self.fs.write_bytes(fd, seg).await?;
            }
            self.fs.close(fd).await?;
            self.fs.rename(&tmp, path).await?;
            Ok(())
        }
        .await;
        if res.is_err() {
            let _ = self.fs.unlink(&tmp).await;
        }
        res
    }

    /// Open a publisher session (owns a bounded in-flight window).
    pub fn publisher(self: &Rc<Self>) -> StreamPublisher {
        StreamPublisher {
            svc: self.clone(),
            window: StreamWindow::new(self.spec.window as usize),
            faults: None,
        }
    }

    /// Open a publisher session that consults `board` for subscriber
    /// liveness (enables `reclaim_on_crash` window recovery).
    pub fn publisher_faulted(self: &Rc<Self>, board: FaultBoard) -> StreamPublisher {
        StreamPublisher {
            svc: self.clone(),
            window: StreamWindow::new(self.spec.window as usize),
            faults: Some(board),
        }
    }

    /// Open a subscriber session with an explicit consumption-ack id
    /// (the id the workflow registered on the publisher's staging
    /// manager — acks under this id drive retention and window release).
    pub fn subscriber(self: &Rc<Self>, id: &str) -> StreamSubscriber {
        // FNV-1a over the id gives each session its own deterministic
        // backoff-jitter stream (only drawn from under a fault plan).
        let mut h: u64 = 0xcbf29ce484222325;
        for b in id.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x100000001b3);
        }
        let rng = StdRng::seed_from_u64(
            self.ctx
                .rng(0x5354_0000 ^ u64::from(self.node.0))
                .random::<u64>()
                ^ h,
        );
        StreamSubscriber {
            svc: self.clone(),
            id: id.to_string(),
            warmed: false,
            rng,
        }
    }
}

// ---------------------------------------------------------------------------
// Publisher
// ---------------------------------------------------------------------------

/// Publisher-side session: the bounded window plus the publish path.
pub struct StreamPublisher {
    svc: Rc<StreamService>,
    window: StreamWindow,
    faults: Option<FaultBoard>,
}

impl StreamPublisher {
    /// The window (inspection/tests).
    pub fn window(&self) -> &StreamWindow {
        &self.window
    }

    /// Sweep the KVS ack keys of every pending step and release the
    /// fully-acked ones. Lazy: only called when the window looks full,
    /// so steady-state publishes cost no extra metadata traffic.
    async fn refresh_acks(&mut self) {
        for (step, path, waiters) in self.window.entries() {
            for a in waiters {
                if self
                    .svc
                    .kvs
                    .lookup(&ack_key(&path, &a.consumer))
                    .await
                    .is_some()
                {
                    self.window.ack(step, &a.consumer);
                }
            }
        }
        self.svc.inner.borrow_mut().stats.ack_refreshes += 1;
    }

    /// Fallible [`StreamPublisher::refresh_acks`] for fault runs.
    async fn try_refresh_acks(&mut self) -> Result<(), TransportError> {
        for (step, path, waiters) in self.window.entries() {
            for a in waiters {
                if self
                    .svc
                    .kvs
                    .try_lookup(&ack_key(&path, &a.consumer))
                    .await?
                    .is_some()
                {
                    self.window.ack(step, &a.consumer);
                }
            }
        }
        self.svc.inner.borrow_mut().stats.ack_refreshes += 1;
        Ok(())
    }

    /// Drop outstanding acks owed by subscribers on crashed nodes.
    fn reclaim_crashed(&mut self) {
        let Some(board) = &self.faults else {
            return;
        };
        if !self.svc.spec.reclaim_on_crash {
            return;
        }
        let board = board.clone();
        let reclaimed = self.window.reclaim_down(|node| !board.node_up(node));
        if reclaimed > 0 {
            self.svc.inner.borrow_mut().stats.slots_reclaimed += reclaimed;
        }
    }

    /// Block until the window admits another step. The infallible path
    /// parks on the head-of-line ack's KVS watch (no polling); records
    /// a window stall if it actually waited.
    async fn await_window(&mut self, rec: &Recorder) {
        if self.window.can_open() {
            return;
        }
        let w = rec.region("stream_window_wait");
        let t0 = self.svc.ctx.now();
        let mut stalled = false;
        loop {
            self.refresh_acks().await;
            if self.window.can_open() {
                break;
            }
            stalled = true;
            let (_, path, consumer) = self
                .window
                .oldest_waiter()
                .expect("full window has a waiter");
            self.svc.kvs.wait_key(&ack_key(&path, &consumer)).await;
        }
        if stalled {
            let mut inner = self.svc.inner.borrow_mut();
            inner.stats.window_stalls += 1;
            inner.stats.window_stall_ns += (self.svc.ctx.now() - t0).nanos();
        }
        w.end();
    }

    /// Faulted window wait: polls (the watch could park on a key whose
    /// committer crashed), reclaiming crashed subscribers' slots each
    /// sweep when `reclaim_on_crash` is set.
    async fn try_await_window(&mut self, rec: &Recorder) -> Result<(), TransportError> {
        self.reclaim_crashed();
        if self.window.can_open() {
            return Ok(());
        }
        let w = rec.region("stream_window_wait");
        let t0 = self.svc.ctx.now();
        let mut stalled = false;
        let res: Result<(), TransportError> = async {
            loop {
                self.try_refresh_acks().await?;
                self.reclaim_crashed();
                if self.window.can_open() {
                    return Ok(());
                }
                stalled = true;
                self.svc.ctx.sleep(self.svc.spec.stall_poll).await;
            }
        }
        .await;
        if stalled {
            let mut inner = self.svc.inner.borrow_mut();
            inner.stats.window_stalls += 1;
            inner.stats.window_stall_ns += (self.svc.ctx.now() - t0).nanos();
        }
        w.end();
        res
    }

    /// Publish step `seq` under logical name `name`: wait for a window
    /// slot, write to node-local storage, then publish step metadata to
    /// the KVS. `ackers` are the subscribers whose acks release the
    /// slot (per-step, so partitioned groups pass only the assignee).
    ///
    /// Call tree: `stream_publish` → { `stream_window_wait`,
    /// `staging_backpressure`, `stream_write`, `stream_commit` }.
    pub async fn publish(
        &mut self,
        rec: &Recorder,
        name: &str,
        seq: u64,
        step: Payload,
        ackers: &[StreamAcker],
    ) {
        let path = self.svc.managed_path(name);
        let size = transport::payload_len(&step);
        let g = rec.region("stream_publish");
        self.await_window(rec).await;
        self.window.open(seq, &path, ackers);
        if let Some(st) = &self.svc.staging {
            if st.would_block(size) {
                let b = rec.region("staging_backpressure");
                st.admit(size).await;
                b.end();
            }
        }
        {
            let w = rec.region("stream_write");
            self.svc.write_step(&path, step).await.expect("local write");
            w.end();
        }
        if let Some(st) = &self.svc.staging {
            st.frame_written(&path, size);
        }
        {
            let c = rec.region("stream_commit");
            self.svc.ctx.sleep(self.svc.spec.publish_overhead).await;
            let meta = FrameMeta {
                owner: self.svc.node,
                size,
                location: FrameLocation::Nvme,
            };
            self.svc.kvs.commit(&path, meta.encode()).await;
            c.end();
        }
        if let Some(st) = &self.svc.staging {
            st.frame_published(&path);
        }
        g.end();
        let mut inner = self.svc.inner.borrow_mut();
        inner.stats.steps_published += 1;
        inner.stats.bytes_published += size;
    }

    /// Fallible [`StreamPublisher::publish`] for fault runs: the window
    /// wait polls with crash reclaim, local writes retry through NVMe
    /// device-error windows, and the metadata commit retries through
    /// broker outages. Fails typed once the budget is exhausted.
    #[allow(clippy::too_many_arguments)]
    pub async fn try_publish(
        &mut self,
        rec: &Recorder,
        name: &str,
        seq: u64,
        step: Payload,
        ackers: &[StreamAcker],
        policy: &RetryPolicy,
        rng: &mut StdRng,
    ) -> Result<(), StreamError> {
        let path = self.svc.managed_path(name);
        let size = transport::payload_len(&step);
        let g = rec.region("stream_publish");
        // On any error below, `g` drops (closing the region) and the
        // aborted slot is recycled so the outer retry starts clean.
        self.try_await_window(rec).await?;
        self.window.open(seq, &path, ackers);
        if let Some(st) = &self.svc.staging {
            if st.would_block(size) {
                let b = rec.region("staging_backpressure");
                st.admit(size).await;
                b.end();
            }
        }
        let mut attempts = 0;
        loop {
            attempts += 1;
            let w = rec.region("stream_write");
            let res = self.svc.write_step(&path, step.clone()).await;
            w.end();
            match res {
                Ok(()) => break,
                Err(_) if attempts < policy.max_attempts => {
                    rec.annotate("produce_retries", 1.0);
                    let pause = policy.backoff(attempts - 1, rng);
                    self.svc.ctx.sleep(pause).await;
                }
                Err(_) => {
                    // The step can never appear: publish a Lost
                    // tombstone (best effort) so subscribers surface a
                    // typed StepLost instead of parking forever.
                    let meta = FrameMeta {
                        owner: self.svc.node,
                        size,
                        location: FrameLocation::Lost,
                    };
                    let _ = self.svc.kvs.try_commit(&path, meta.encode()).await;
                    // Nobody will ever ack a lost step; free its slot.
                    self.window.abort(seq);
                    g.end();
                    return Err(StreamError::Storage { path });
                }
            }
        }
        if let Some(st) = &self.svc.staging {
            st.frame_written(&path, size);
        }
        let commit_res = {
            let c = rec.region("stream_commit");
            self.svc.ctx.sleep(self.svc.spec.publish_overhead).await;
            let meta = FrameMeta {
                owner: self.svc.node,
                size,
                location: FrameLocation::Nvme,
            };
            let r = self.svc.kvs.try_commit(&path, meta.encode()).await;
            c.end();
            r
        };
        if let Err(e) = commit_res {
            // Uncommitted steps are invisible to subscribers: no ack
            // will ever arrive, so recycle the slot for the retry.
            self.window.abort(seq);
            g.end();
            return Err(e.into());
        }
        if let Some(st) = &self.svc.staging {
            st.frame_published(&path);
        }
        g.end();
        let mut inner = self.svc.inner.borrow_mut();
        inner.stats.steps_published += 1;
        inner.stats.bytes_published += size;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Subscriber
// ---------------------------------------------------------------------------

/// Subscriber-side session state (warm/cold synchronization plus the
/// consumption-ack identity).
pub struct StreamSubscriber {
    svc: Rc<StreamService>,
    id: String,
    warmed: bool,
    rng: StdRng,
}

impl StreamSubscriber {
    /// The consumption-ack id this session acks with.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Whether this session has completed its cold first sync.
    pub fn is_warm(&self) -> bool {
        self.warmed
    }

    /// Consume a step by logical name, returning its payload and
    /// asynchronously publishing the consumption ack that releases both
    /// staging retention and the publisher's window slot.
    ///
    /// Call tree: `stream_consume` → { `stream_sync`,
    /// `stream_get_data`, `stream_cons_store`, `read_single_buf` }.
    pub async fn consume_step(&mut self, rec: &Recorder, name: &str) -> Payload {
        let svc = self.svc.clone();
        let path = svc.managed_path(name);
        let g = rec.region("stream_consume");

        // --- Synchronization ------------------------------------------
        // Local presence first: a flock probe suffices once the
        // publisher shares our filesystem.
        let mut data: Option<Payload> = None;
        if svc.fs.exists(&path) {
            let f = rec.region("stream_sync");
            svc.fs
                .flock(&path, LockKind::Shared)
                .await
                .expect("flock on existing file");
            svc.fs
                .funlock(&path, LockKind::Shared)
                .await
                .expect("funlock");
            f.end();
            let r = rec.region("read_single_buf");
            data = try_read_local(&svc.fs, &path).await;
            r.end();
            if data.is_some() {
                svc.inner.borrow_mut().stats.local_hits += 1;
                self.warmed = true;
            }
        }

        if data.is_none() {
            // Remote (or evicted) step: resolve the owner through the
            // KVS rendezvous.
            let f = rec.region("stream_sync");
            let mut meta;
            if self.warmed && svc.spec.warm_sync {
                match svc.kvs.lookup(&path).await {
                    Some(v) => {
                        svc.inner.borrow_mut().stats.warm_syncs += 1;
                        meta = FrameMeta::decode(v.value);
                    }
                    None => {
                        rec.annotate("cold_fallbacks", 1.0);
                        svc.inner.borrow_mut().stats.cold_syncs += 1;
                        let v = svc.kvs.wait_key(&path).await;
                        meta = FrameMeta::decode(v.value);
                    }
                }
            } else {
                svc.inner.borrow_mut().stats.cold_syncs += 1;
                let v = svc.kvs.wait_key(&path).await;
                meta = FrameMeta::decode(v.value);
            }
            f.end();
            self.warmed = true;

            // --- Data movement ----------------------------------------
            let mut attempts = 0;
            let fetched = loop {
                attempts += 1;
                assert!(
                    attempts <= 8,
                    "step {path} unresolvable (evicted mid-consume?)"
                );
                match meta.location {
                    FrameLocation::Lost => {
                        panic!(
                            "step {path} lost to a node crash (use try_consume_step under faults)"
                        );
                    }
                    FrameLocation::Pfs => {
                        let pfs = svc
                            .staging
                            .as_ref()
                            .and_then(|st| st.pfs_client())
                            .expect("spilled step but no PFS client configured");
                        let r = rec.region("stream_pfs_fallback");
                        let got = read_pfs(pfs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            if let Some(st) = &svc.staging {
                                st.note_pfs_fallback();
                            }
                            break got;
                        }
                    }
                    FrameLocation::Nvme if meta.owner == svc.node => {
                        let r = rec.region("read_single_buf");
                        let got = try_read_local(&svc.fs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            break got;
                        }
                    }
                    FrameLocation::Nvme => {
                        // RMA fetch from the owner's node-local storage.
                        let r = rec.region("stream_get_data");
                        let (_, got) = svc
                            .ep
                            .bulk_rpc(
                                meta.owner,
                                STREAM_AM,
                                Bytes::copy_from_slice(path.as_bytes()),
                                Vec::new(),
                            )
                            .await;
                        r.end();
                        if transport::payload_len(&got) > 0 {
                            if let Some(got) = self.store_cache(rec, &path, got).await {
                                break got;
                            }
                        }
                    }
                }
                let v = svc
                    .kvs
                    .lookup(&path)
                    .await
                    .unwrap_or_else(|| panic!("step {path} retired before consume"));
                meta = FrameMeta::decode(v.value);
            };
            data = Some(fetched);
        }
        let data = data.expect("consume resolved a payload");
        g.end();

        self.spawn_ack(&path, false);

        let size = transport::payload_len(&data);
        let mut inner = svc.inner.borrow_mut();
        inner.stats.steps_consumed += 1;
        inner.stats.bytes_consumed += size;
        data
    }

    /// Fallible [`StreamSubscriber::consume_step`] for fault runs:
    /// metadata ops ride the retrying KVS client, the RMA fetch retries
    /// with backoff and falls back to a PFS spill copy when the owner
    /// is down, `Lost` tombstones surface as [`StreamError::StepLost`],
    /// and the resolve loop is bounded.
    pub async fn try_consume_step(
        &mut self,
        rec: &Recorder,
        name: &str,
    ) -> Result<Payload, StreamError> {
        let svc = self.svc.clone();
        let path = svc.managed_path(name);
        let policy = stream_retry_policy();
        let g = rec.region("stream_consume");

        let mut data: Option<Payload> = None;
        if svc.fs.exists(&path) {
            let f = rec.region("stream_sync");
            let locked = svc.fs.flock(&path, LockKind::Shared).await.is_ok();
            if locked {
                let _ = svc.fs.funlock(&path, LockKind::Shared).await;
            }
            f.end();
            if locked {
                let r = rec.region("read_single_buf");
                data = try_read_local(&svc.fs, &path).await;
                r.end();
                if data.is_some() {
                    svc.inner.borrow_mut().stats.local_hits += 1;
                    self.warmed = true;
                }
            }
        }

        if data.is_none() {
            let meta_res: Result<FrameMeta, StreamError> = {
                let f = rec.region("stream_sync");
                let r = if self.warmed && svc.spec.warm_sync {
                    match svc.kvs.try_lookup(&path).await {
                        Ok(Some(v)) => {
                            svc.inner.borrow_mut().stats.warm_syncs += 1;
                            Ok(FrameMeta::decode(v.value))
                        }
                        Ok(None) => {
                            rec.annotate("cold_fallbacks", 1.0);
                            svc.inner.borrow_mut().stats.cold_syncs += 1;
                            svc.kvs
                                .try_wait_key(&path)
                                .await
                                .map(|v| FrameMeta::decode(v.value))
                                .map_err(StreamError::from)
                        }
                        Err(e) => Err(e.into()),
                    }
                } else {
                    svc.inner.borrow_mut().stats.cold_syncs += 1;
                    svc.kvs
                        .try_wait_key(&path)
                        .await
                        .map(|v| FrameMeta::decode(v.value))
                        .map_err(StreamError::from)
                };
                f.end();
                r
            };
            let mut meta = meta_res?;
            self.warmed = true;

            let mut attempts = 0;
            let fetched = loop {
                attempts += 1;
                if attempts > policy.max_attempts {
                    return Err(StreamError::Unresolvable {
                        path,
                        attempts: attempts - 1,
                    });
                }
                match meta.location {
                    FrameLocation::Lost => {
                        return Err(StreamError::StepLost { path });
                    }
                    FrameLocation::Pfs => {
                        if let Some(pfs) = svc.staging.as_ref().and_then(|st| st.pfs_client()) {
                            let r = rec.region("stream_pfs_fallback");
                            let got = read_pfs(pfs, &path).await;
                            r.end();
                            if let Some(got) = got {
                                if let Some(st) = &svc.staging {
                                    st.note_pfs_fallback();
                                }
                                break got;
                            }
                        }
                    }
                    FrameLocation::Nvme if meta.owner == svc.node => {
                        let r = rec.region("read_single_buf");
                        let got = try_read_local(&svc.fs, &path).await;
                        r.end();
                        if let Some(got) = got {
                            break got;
                        }
                    }
                    FrameLocation::Nvme => {
                        let r = rec.region("stream_get_data");
                        let fetch = svc
                            .ep
                            .bulk_rpc_retrying(
                                meta.owner,
                                STREAM_AM,
                                Bytes::copy_from_slice(path.as_bytes()),
                                Vec::new(),
                                &policy,
                                &mut self.rng,
                            )
                            .await;
                        r.end();
                        match fetch {
                            Ok((_, got)) if transport::payload_len(&got) > 0 => {
                                if let Some(got) = self.try_store_cache(rec, &path, got).await {
                                    break got;
                                }
                            }
                            Ok(_) => {
                                // Owner answered but no longer holds the
                                // step: re-resolve through the KVS.
                            }
                            Err(_) => {
                                // Owner unreachable: try the PFS spill
                                // copy before waiting out the restart.
                                rec.annotate("dead_owner_fallbacks", 1.0);
                                if let Some(pfs) =
                                    svc.staging.as_ref().and_then(|st| st.pfs_client())
                                {
                                    let r = rec.region("stream_pfs_fallback");
                                    let got = read_pfs(pfs, &path).await;
                                    r.end();
                                    if let Some(got) = got {
                                        if let Some(st) = &svc.staging {
                                            st.note_pfs_fallback();
                                        }
                                        break got;
                                    }
                                }
                            }
                        }
                    }
                }
                let pause = policy.backoff(attempts - 1, &mut self.rng);
                svc.ctx.sleep(pause).await;
                match svc.kvs.try_lookup(&path).await {
                    Ok(Some(v)) => meta = FrameMeta::decode(v.value),
                    Ok(None) => return Err(StreamError::StepLost { path }),
                    Err(e) => return Err(e.into()),
                }
            };
            data = Some(fetched);
        }
        let data = data.expect("consume resolved a payload");
        g.end();

        self.spawn_ack(&path, true);

        let size = transport::payload_len(&data);
        let mut inner = svc.inner.borrow_mut();
        inner.stats.steps_consumed += 1;
        inner.stats.bytes_consumed += size;
        Ok(data)
    }

    /// Publish the consumption ack asynchronously: retention and window
    /// release care, the application does not, so the commit must not
    /// add to the consume latency. Without a staging manager (bare
    /// rigs) the ack key is still committed — the publisher's window
    /// watches it.
    fn spawn_ack(&self, path: &str, fallible: bool) {
        let svc = self.svc.clone();
        let p = path.to_string();
        let id = self.id.clone();
        self.svc.ctx.spawn(async move {
            match &svc.staging {
                Some(st) if fallible => {
                    let _ = st.try_publish_ack(&p, &id).await;
                }
                Some(st) => st.publish_ack(&p, &id).await,
                None if fallible => {
                    let _ = svc
                        .kvs
                        .try_commit(&ack_key(&p, &id), Bytes::from_static(b"1"))
                        .await;
                }
                None => {
                    svc.kvs
                        .commit(&ack_key(&p, &id), Bytes::from_static(b"1"))
                        .await;
                }
            }
        });
    }

    /// Stage a fetched remote step into the local cache and read it
    /// back (atomic rename publication).
    async fn store_cache(&self, rec: &Recorder, path: &str, got: Payload) -> Option<Payload> {
        let svc = &self.svc;
        let s = rec.region("stream_cons_store");
        svc.ensure_dirs(path).await;
        // Session-unique tmp name: same-node sessions of a broadcast
        // group can fetch the same step concurrently, and create()
        // truncates, so a shared tmp would interleave their writes.
        let tmp = format!("{path}.tmp-{}-{}", svc.node.0, self.id);
        let fd = svc.fs.create(&tmp).await.expect("managed dir");
        let size = transport::payload_len(&got);
        for seg in got {
            svc.fs.write_bytes(fd, seg).await.expect("store");
        }
        svc.fs.close(fd).await.expect("close");
        svc.fs.rename(&tmp, path).await.expect("cache rename");
        if let Some(st) = &svc.staging {
            st.cache_inserted(path, size);
        }
        s.end();
        let r = rec.region("read_single_buf");
        let got = try_read_local(&svc.fs, path).await;
        r.end();
        got
    }

    /// Fallible [`StreamSubscriber::store_cache`]: `None` when the
    /// cache write failed (device-error window) — the caller
    /// re-resolves rather than serving a partial step.
    async fn try_store_cache(&self, rec: &Recorder, path: &str, got: Payload) -> Option<Payload> {
        let svc = &self.svc;
        let s = rec.region("stream_cons_store");
        svc.ensure_dirs(path).await;
        // Session-unique tmp name: same-node sessions of a broadcast
        // group can fetch the same step concurrently, and create()
        // truncates, so a shared tmp would interleave their writes.
        let tmp = format!("{path}.tmp-{}-{}", svc.node.0, self.id);
        let size = transport::payload_len(&got);
        let write: FsResult<()> = async {
            let fd = svc.fs.create(&tmp).await?;
            for seg in got {
                svc.fs.write_bytes(fd, seg).await?;
            }
            svc.fs.close(fd).await?;
            svc.fs.rename(&tmp, path).await?;
            Ok(())
        }
        .await;
        if write.is_err() {
            let _ = svc.fs.unlink(&tmp).await;
            s.end();
            return None;
        }
        if let Some(st) = &svc.staging {
            st.cache_inserted(path, size);
        }
        s.end();
        let r = rec.region("read_single_buf");
        let got = try_read_local(&svc.fs, path).await;
        r.end();
        got
    }
}

/// Read a whole local file; `None` when it vanished (staging eviction
/// between probe and open).
async fn try_read_local(fs: &LocalFs, path: &str) -> Option<Payload> {
    let fd = fs.open(path).await.ok()?;
    let data = fs.read_segments(fd).await.ok()?;
    let _ = fs.close(fd).await;
    Some(data)
}

/// Read a spilled step's PFS copy; `None` when it is already retired.
async fn read_pfs(pfs: &PfsClient, path: &str) -> Option<Payload> {
    let fd = pfs.open(&staging::spill_path(path)).await.ok()?;
    let data = pfs.read_segments(fd).await.ok()?;
    let _ = pfs.close(fd).await;
    Some(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Cluster, ClusterSpec};
    use kvs::{KvsClient, KvsServer, KvsSpec};
    use localfs::LocalFsSpec;
    use mdsim::{FrameTemplate, Model};
    use simcore::{Sim, SimTime};
    use transport::TransportSpec;

    struct Rig {
        services: Vec<Rc<StreamService>>,
        #[allow(dead_code)]
        kvs_server: Rc<KvsServer>,
    }

    /// n nodes; KVS broker on node 0; stream service + local fs on
    /// every node.
    fn setup(sim: &Sim, n: usize, spec: StreamSpec) -> Rig {
        let ctx = sim.ctx();
        let cl = Cluster::build(&ctx, &ClusterSpec::corona(n));
        let tp = Transport::new(&ctx, cl.fabric().clone(), TransportSpec::default());
        let kvs_server = KvsServer::start(&ctx, &tp, NodeId(0), KvsSpec::default());
        let services = (0..n as u32)
            .map(|i| {
                let fs = LocalFs::new(
                    &ctx,
                    cl.node(NodeId(i)).nvme.clone(),
                    LocalFsSpec::default(),
                );
                let kc = KvsClient::new(&ctx, &tp, NodeId(i), NodeId(0), KvsSpec::default());
                StreamService::start(&ctx, &tp, NodeId(i), fs, kc, spec.clone())
            })
            .collect();
        Rig {
            services,
            kvs_server,
        }
    }

    fn step_payload(step: u64) -> (FrameTemplate, Payload) {
        let t = FrameTemplate::generate(Model::Jac, 5);
        let f = t.frame_segments(step);
        (t, f)
    }

    fn acker(consumer: &str, node: u32) -> StreamAcker {
        StreamAcker {
            consumer: consumer.to_string(),
            node,
        }
    }

    #[test]
    fn publish_then_consume_same_node() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 1, StreamSpec::default());
        let svc = rig.services[0].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (t, f) = step_payload(880);
            let mut pb = svc.publisher();
            pb.publish(&rec, "g0/s0", 0, f, &[acker("c0", 0)]).await;
            let mut sub = svc.subscriber("c0");
            let got = sub.consume_step(&rec, "g0/s0").await;
            (t.validate(&got, 880), rec.finish())
        });
        sim.run();
        let (ok, profile) = h.try_take().unwrap();
        assert!(ok, "step corrupted");
        assert!(profile.node(&["stream_consume", "stream_sync"]).is_some());
        assert!(profile
            .node(&["stream_consume", "stream_get_data"])
            .is_none());
        assert!(profile
            .node(&["stream_consume", "read_single_buf"])
            .is_some());
    }

    #[test]
    fn cross_node_consume_fetches_and_stages() {
        let sim = Sim::new(0);
        let rig = setup(&sim, 2, StreamSpec::default());
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let (t, f) = step_payload(1);
            let mut pb = prod.publisher();
            pb.publish(&rec, "s1", 0, f, &[acker("c0", 1)]).await;
            let mut sub = cons.subscriber("c0");
            let got = sub.consume_step(&rec, "s1").await;
            (t.validate(&got, 1), rec.finish())
        });
        sim.run();
        let (ok, profile) = h.try_take().unwrap();
        assert!(ok);
        for region in [
            "stream_sync",
            "stream_get_data",
            "stream_cons_store",
            "read_single_buf",
        ] {
            assert!(
                profile.node(&["stream_consume", region]).is_some(),
                "missing {region}"
            );
        }
        assert_eq!(rig.services[0].stats().fetches_served, 1);
        assert_eq!(rig.services[1].stats().steps_consumed, 1);
    }

    #[test]
    fn window_bounds_publisher_ahead_of_subscriber() {
        // window = 1: the second publish must wait for the first step's
        // ack, which the subscriber only sends at t ≈ 300 ms.
        let sim = Sim::new(0);
        let spec = StreamSpec {
            window: 1,
            ..StreamSpec::default()
        };
        let rig = setup(&sim, 2, spec);
        let prod = rig.services[0].clone();
        let cons = rig.services[1].clone();
        let ctx = sim.ctx();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let mut pb = prod.publisher();
            let (_, f0) = step_payload(0);
            pb.publish(&rec, "w/0", 0, f0, &[acker("c0", 1)]).await;
            let (_, f1) = step_payload(1);
            pb.publish(&rec, "w/1", 1, f1, &[acker("c0", 1)]).await;
            (ctx.now().as_secs_f64(), pb.window().peak_in_flight())
        });
        let ctx2 = sim.ctx();
        let hc = sim.spawn(async move {
            ctx2.sleep(SimDuration::from_millis(300)).await;
            let rec = Recorder::new(&ctx2);
            let mut sub = cons.subscriber("c0");
            let got = sub.consume_step(&rec, "w/0").await;
            transport::payload_len(&got)
        });
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        let (t_second_publish, peak) = h.try_take().expect("publisher hung on the window");
        assert!(
            t_second_publish >= 0.3,
            "second publish at {t_second_publish}s beat the ack"
        );
        assert_eq!(peak, 1, "window bound violated");
        assert_eq!(hc.try_take().unwrap(), Model::Jac.frame_bytes());
        assert!(rig.services[0].stats().window_stalls >= 1);
        assert!(rig.services[0].stats().window_stall_ns > 0);
    }

    #[test]
    fn broadcast_slot_needs_every_subscriber_ack() {
        // window = 1, two subscribers: the slot frees only after BOTH
        // ack, so the second publish lands after the slower (500 ms)
        // subscriber.
        let sim = Sim::new(0);
        let spec = StreamSpec {
            window: 1,
            ..StreamSpec::default()
        };
        let rig = setup(&sim, 3, spec);
        let prod = rig.services[0].clone();
        let ctx = sim.ctx();
        let h = {
            let prod = prod.clone();
            sim.spawn(async move {
                let rec = Recorder::new(&ctx);
                let mut pb = prod.publisher();
                let ackers = [acker("c0", 1), acker("c1", 2)];
                let (_, f0) = step_payload(0);
                pb.publish(&rec, "b/0", 0, f0, &ackers).await;
                let (_, f1) = step_payload(1);
                pb.publish(&rec, "b/1", 1, f1, &ackers).await;
                ctx.now().as_secs_f64()
            })
        };
        for (i, delay_ms) in [(1u32, 100u64), (2, 500)] {
            let svc = rig.services[i as usize].clone();
            let ctx = sim.ctx();
            sim.spawn(async move {
                ctx.sleep(SimDuration::from_millis(delay_ms)).await;
                let rec = Recorder::new(&ctx);
                let mut sub = svc.subscriber(&format!("c{}", i - 1));
                sub.consume_step(&rec, "b/0").await;
            });
        }
        sim.run_until(SimTime::from_nanos(5_000_000_000));
        let t = h.try_take().expect("publisher hung");
        assert!(t >= 0.5, "slot freed before the slow subscriber: {t}s");
    }

    #[test]
    fn reclaim_frees_window_held_by_crashed_subscriber() {
        // The only acker crashes without ever consuming; with
        // reclaim_on_crash the publisher recovers the slot during the
        // outage instead of head-of-line stalling until restart.
        let sim = Sim::new(1);
        let spec = StreamSpec {
            window: 1,
            ..StreamSpec::default()
        };
        let rig = setup(&sim, 2, spec);
        let ctx = sim.ctx();
        let board = FaultBoard::new(&ctx, 2, 1);
        let plan = faults::FaultPlan::scheduled(vec![faults::FaultEvent {
            at: SimDuration::from_millis(100),
            kind: faults::FaultKind::NodeCrash {
                node: 1,
                down_for: SimDuration::from_secs(30),
            },
        }]);
        board.arm(&plan);
        let prod = rig.services[0].clone();
        let h = sim.spawn(async move {
            let rec = Recorder::new(&ctx);
            let mut pb = prod.publisher_faulted(board);
            let policy = stream_retry_policy();
            let mut rng = StdRng::seed_from_u64(9);
            let (_, f0) = step_payload(0);
            pb.try_publish(&rec, "r/0", 0, f0, &[acker("c0", 1)], &policy, &mut rng)
                .await
                .expect("publish 0");
            ctx.sleep(SimDuration::from_millis(300)).await;
            let (_, f1) = step_payload(1);
            pb.try_publish(&rec, "r/1", 1, f1, &[acker("c0", 1)], &policy, &mut rng)
                .await
                .expect("publish 1");
            ctx.now().as_secs_f64()
        });
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        let t = h.try_take().expect("reclaim never freed the window");
        assert!(t < 1.0, "reclaim took until {t}s");
        assert!(rig.services[0].stats().slots_reclaimed >= 1);
    }

    #[test]
    fn reduction_tree_shapes() {
        let t1 = ReductionTree::new(1);
        assert_eq!(t1.depth(), 0);
        assert_eq!(t1.merges(), 0);
        assert_eq!(t1.combined_bytes(&[7]), 7);
        let t4 = ReductionTree::new(4);
        assert_eq!(t4.depth(), 2);
        assert_eq!(t4.merges(), 3);
        assert_eq!(t4.stages()[0], vec![(0, 1), (2, 3)]);
        assert_eq!(t4.stages()[1], vec![(0, 2)]);
        assert_eq!(t4.combined_bytes(&[1, 2, 3, 4]), 10);
        let t5 = ReductionTree::new(5);
        assert_eq!(t5.depth(), 3);
        assert_eq!(t5.merges(), 4);
        assert_eq!(t5.combined_bytes(&[1, 1, 1, 1, 1]), 5);
    }

    #[test]
    fn partitioned_assignment_is_round_robin() {
        assert!(delivers_to(GroupMode::Partitioned, 0, 0, 4));
        assert!(delivers_to(GroupMode::Partitioned, 5, 1, 4));
        assert!(!delivers_to(GroupMode::Partitioned, 5, 2, 4));
        assert!(delivers_to(GroupMode::Broadcast, 5, 2, 4));
        assert_eq!(GroupMode::parse("broadcast"), Some(GroupMode::Broadcast));
        assert_eq!(
            GroupMode::parse("partitioned"),
            Some(GroupMode::Partitioned)
        );
        assert_eq!(GroupMode::parse("x"), None);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // Bounded-window invariant: driving the window with any
        // interleaving of opens and (arbitrarily permuted, possibly
        // duplicated or bogus) acks never exceeds the capacity, and
        // acking everything drains it.
        #[test]
        fn window_never_exceeds_capacity(
            capacity in 1usize..6,
            ops in proptest::collection::vec((0u8..4, 0u64..32, 0u32..4), 1..200),
        ) {
            let mut w = StreamWindow::new(capacity);
            let ackers: Vec<StreamAcker> = (0..3)
                .map(|i| StreamAcker { consumer: format!("c{i}"), node: i })
                .collect();
            let mut next_step = 0u64;
            for (op, step, who) in ops {
                match op {
                    // Open when allowed (the publisher's gate).
                    0 => {
                        if w.can_open() {
                            let k = (who as usize % 3) + 1;
                            w.open(next_step, &format!("/s/{next_step}"), &ackers[..k]);
                            next_step += 1;
                        }
                    }
                    // Ack an arbitrary (step, consumer) — possibly
                    // unknown or duplicate.
                    1 | 2 => {
                        let _ = w.ack(step, &format!("c{}", who % 3));
                    }
                    // Reclaim an arbitrary node.
                    _ => {
                        let down = who % 3;
                        let _ = w.reclaim_down(|n| n == down);
                    }
                }
                prop_assert!(w.in_flight() <= w.capacity());
                prop_assert!(w.peak_in_flight() <= w.capacity());
            }
            // Drain: ack every outstanding waiter.
            for (step, _, waiters) in w.entries() {
                for a in waiters {
                    w.ack(step, &a.consumer);
                }
            }
            prop_assert_eq!(w.in_flight(), 0);
        }

        // Reduction-tree byte conservation: for any leaf sizes, the
        // combined root size equals the sum of the leaves, and the
        // schedule performs exactly `leaves - 1` merges.
        #[test]
        fn reduction_tree_conserves_bytes(
            leaf_bytes in proptest::collection::vec(0u64..1_000_000_000, 1..33),
        ) {
            let tree = ReductionTree::new(leaf_bytes.len());
            let total: u64 = leaf_bytes.iter().sum();
            prop_assert_eq!(tree.combined_bytes(&leaf_bytes), total);
            prop_assert_eq!(tree.merges(), leaf_bytes.len() - 1);
            // Depth is the information-theoretic minimum for pairwise
            // merges.
            let min_depth = usize::BITS - (leaf_bytes.len() - 1).leading_zeros();
            prop_assert_eq!(tree.depth(), min_depth as usize);
        }

        // Partitioned-group coverage: every step is delivered to
        // exactly one subscriber; broadcast delivers to all of them.
        #[test]
        fn partitioned_steps_have_exactly_one_assignee(
            step in 0u64..1_000_000,
            fanout in 1u32..9,
        ) {
            let assigned: Vec<u32> = (0..fanout)
                .filter(|s| delivers_to(GroupMode::Partitioned, step, *s, fanout))
                .collect();
            prop_assert_eq!(assigned.len(), 1);
            prop_assert_eq!(assigned[0], partition_assignee(step, fanout));
            let broadcast = (0..fanout)
                .filter(|s| delivers_to(GroupMode::Broadcast, step, *s, fanout))
                .count();
            prop_assert_eq!(broadcast, fanout as usize);
        }
    }
}
