//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace uses —
//! structs with named fields (including lifetime generics), fieldless
//! enums, and enums with struct variants — honoring `#[serde(skip)]` and
//! `#[serde(serialize_with = "path")]`. Because the registry is
//! unreachable, it parses the item's tokens directly instead of using
//! `syn`/`quote`, and emits the impl through `TokenStream::from_str`.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};
use std::str::FromStr;

/// Derive `serde::Serialize` by lowering the item to a `serde::Content`
/// tree: structs become maps of their fields, unit enum variants become
/// their name as a string, and struct variants become
/// `{ "Variant": { fields... } }` — matching serde's externally-tagged
/// default.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let item = parse_item(&tokens);
    let code = match &item.body {
        Body::Struct(fields) => gen_struct(&item, fields),
        Body::Enum(variants) => gen_enum(&item, variants),
    };
    TokenStream::from_str(&code).expect("serde_derive generated invalid Rust")
}

struct Item {
    name: String,
    /// Raw generics, bounds included, e.g. `'a, T: Clone`.
    generics: Vec<TokenTree>,
    body: Body,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    serialize_with: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

/// Render tokens back to source, spacing them so the result re-lexes
/// identically (joint puncts like the `'` of a lifetime stay attached).
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t {
            TokenTree::Ident(i) => {
                out.push_str(&i.to_string());
                out.push(' ');
            }
            TokenTree::Literal(l) => {
                out.push_str(&l.to_string());
                out.push(' ');
            }
            TokenTree::Punct(p) => {
                out.push(p.as_char());
                if p.spacing() == Spacing::Alone {
                    out.push(' ');
                }
            }
            TokenTree::Group(g) => {
                let (open, close) = match g.delimiter() {
                    Delimiter::Parenthesis => ('(', ')'),
                    Delimiter::Brace => ('{', '}'),
                    Delimiter::Bracket => ('[', ']'),
                    Delimiter::None => (' ', ' '),
                };
                out.push(open);
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                out.push_str(&tokens_to_string(&inner));
                out.push(close);
                out.push(' ');
            }
        }
    }
    out
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip attributes starting at `i`, returning the parsed serde options.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut skip = false;
    let mut with = None;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            parse_serde_attr(g, &mut skip, &mut with);
            *i += 2;
        } else {
            break;
        }
    }
    (skip, with)
}

/// If `g` is a `[serde(...)]` attribute body, record its options.
fn parse_serde_attr(g: &proc_macro::Group, skip: &mut bool, with: &mut Option<String>) {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.len() != 2 || !is_ident(&toks[0], "serde") {
        return;
    }
    let TokenTree::Group(args) = &toks[1] else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if is_ident(&args[j], "skip") {
            *skip = true;
            j += 1;
        } else if is_ident(&args[j], "serialize_with") {
            let lit = args
                .get(j + 2)
                .unwrap_or_else(|| panic!("serde(serialize_with) expects = \"path\""));
            let raw = lit.to_string();
            *with = Some(
                raw.trim_matches('"')
                    .replace("\\\"", "\"")
                    .replace("\\\\", "\\"),
            );
            j += 3;
        } else {
            // Unknown option (rename, default, …): not used in this
            // workspace; fail loudly rather than silently mis-serialize.
            panic!("unsupported serde attribute: {}", args[j]);
        }
        if j < args.len() && is_punct(&args[j], ',') {
            j += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn parse_item(tokens: &[TokenTree]) -> Item {
    let mut i = 0;
    skip_attrs(tokens, &mut i);
    skip_visibility(tokens, &mut i);

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("derive(Serialize) supports only structs and enums");
    };
    i += 1;

    let name = tokens[i].to_string();
    i += 1;

    let mut generics = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        i += 1;
        let mut depth = 1usize;
        while depth > 0 {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            generics.push(tokens[i].clone());
            i += 1;
        }
    }

    // Scan forward to the body group, stepping over any where clause.
    let body_group = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g,
            TokenTree::Punct(p) if p.as_char() == ';' => {
                panic!("derive(Serialize) does not support unit/tuple structs")
            }
            _ => i += 1,
        }
    };
    let body_tokens: Vec<TokenTree> = body_group.stream().into_iter().collect();

    let body = if is_enum {
        Body::Enum(parse_variants(&body_tokens))
    } else {
        Body::Struct(parse_fields(&body_tokens))
    };
    Item {
        name,
        generics,
        body,
    }
}

fn parse_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, serialize_with) = skip_attrs(tokens, &mut i);
        skip_visibility(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: everything to the next comma outside angle
        // brackets (`->` must not close a bracket).
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < tokens.len() {
            let t = &tokens[i];
            if is_punct(t, ',') && angle == 0 {
                i += 1;
                break;
            }
            if is_punct(t, '<') {
                angle += 1;
            } else if is_punct(t, '>') && !prev_dash {
                angle -= 1;
            }
            prev_dash = is_punct(t, '-');
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            serialize_with,
        });
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let mut fields = None;
        if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    fields = Some(parse_fields(&inner));
                    i += 1;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("derive(Serialize) does not support tuple variants (in `{name}`)")
                }
                _ => {}
            }
        }
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Split raw generics on top-level commas into per-parameter token runs.
fn split_params(generics: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut params = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in generics {
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        } else if is_punct(t, ',') && angle == 0 {
            params.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        params.push(cur);
    }
    params
}

/// `(impl_generics, ty_generics, where_clause)` for the emitted impl.
fn generics_parts(generics: &[TokenTree]) -> (String, String, String) {
    if generics.is_empty() {
        return (String::new(), String::new(), String::new());
    }
    let impl_generics = format!("<{}>", tokens_to_string(generics));
    let mut ty_args = Vec::new();
    let mut bounds = Vec::new();
    for param in split_params(generics) {
        // Strip any `: bounds` / `= default` suffix to get the bare name.
        let head: Vec<TokenTree> = param
            .iter()
            .take_while(|t| !is_punct(t, ':') && !is_punct(t, '='))
            .cloned()
            .collect();
        let name = tokens_to_string(&head).trim().to_string();
        if name.starts_with('\'') {
            ty_args.push(name);
        } else if let Some(n) = name.strip_prefix("const ") {
            ty_args.push(n.trim().to_string());
        } else {
            bounds.push(format!("{name}: ::serde::Serialize"));
            ty_args.push(name);
        }
    }
    let ty_generics = format!("<{}>", ty_args.join(", "));
    let where_clause = if bounds.is_empty() {
        String::new()
    } else {
        format!("where {}", bounds.join(", "))
    };
    (impl_generics, ty_generics, where_clause)
}

/// Emit the push of one field into `__fields`, honoring serde options.
/// `access` is the expression for a reference to the field value.
fn field_push(f: &Field, access: &str) -> String {
    if f.skip {
        return String::new();
    }
    let value = match &f.serialize_with {
        Some(path) => format!(
            "match {path}({access}, ::serde::ContentSerializer) {{ \
                 Ok(__c) => __c, Err(__e) => match __e {{}}, }}"
        ),
        None => format!("::serde::Serialize::to_content({access})"),
    };
    format!("__fields.push((\"{}\".to_string(), {value}));\n", f.name)
}

fn gen_struct(item: &Item, fields: &[Field]) -> String {
    let (impl_g, ty_g, where_c) = generics_parts(&item.generics);
    let mut body = String::from(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        body.push_str(&field_push(f, &format!("&self.{}", f.name)));
    }
    body.push_str("::serde::Content::Map(__fields)\n");
    format!(
        "impl {impl_g} ::serde::Serialize for {name} {ty_g} {where_c} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}}}\n\
         }}\n",
        name = item.name
    )
}

fn gen_enum(item: &Item, variants: &[Variant]) -> String {
    let (impl_g, ty_g, where_c) = generics_parts(&item.generics);
    assert!(!variants.is_empty(), "cannot serialize an empty enum");
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),\n",
                name = item.name,
                v = v.name
            )),
            Some(fields) => {
                let bindings = fields
                    .iter()
                    .map(|f| format!("{n}: __f_{n}", n = f.name))
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut body = String::from(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                     ::serde::Content)> = ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    body.push_str(&field_push(f, &format!("__f_{}", f.name)));
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {bindings} }} => \
                     ::serde::Content::Map(vec![(\"{v}\".to_string(), {{\n{body}\
                     ::serde::Content::Map(__fields)\n}})]),\n",
                    name = item.name,
                    v = v.name
                ));
            }
        }
    }
    format!(
        "impl {impl_g} ::serde::Serialize for {name} {ty_g} {where_c} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n",
        name = item.name
    )
}
