//! Offline stand-in for the `rand` crate (0.10-flavoured surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it uses: [`rngs::StdRng`], [`SeedableRng`], and the
//! [`RngExt`] extension trait with `random`, `random_range` and
//! `random_bool`. The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic, portable, and statistically solid for simulation use.
//! Distribution details intentionally follow the simplest unbiased
//! constructions (Lemire-style rejection for integer ranges, 53-bit
//! mantissa scaling for floats); they are stable within this workspace but
//! are not bit-compatible with crates.io `rand`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 finalizer used for seeding and stream derivation.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro construction here.
    pub type SmallRng = StdRng;
}

/// Types that can be sampled uniformly over their full domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a generator can sample from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased uniform draw in `[0, span)` (`span` > 0) via multiply-shift
/// with rejection (Lemire).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience sampling methods, in the style of rand 0.10's `Rng`.
pub trait RngExt: RngCore {
    /// A uniform value over `T`'s full domain ( `[0,1)` for floats ).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: rand's historical `Rng` name.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y): (u64, u64) = (a.random(), b.random());
        assert_eq!(x, y);
        let z: u64 = c.random();
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.random_range(5..17);
            assert!((5..17).contains(&v));
            let f: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = r.random_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn bool_probability_is_reasonable() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
