//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's tests use: the `proptest!` macro
//! (with `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, numeric
//! range strategies, tuple strategies, `prop_map`, `proptest::collection::vec`,
//! and string-literal strategies for the `[class]{m,n}` regex subset.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! file: each test runs `cases` deterministic random cases seeded from
//! the test's name, and a failing case panics with its inputs' debug
//! representation via the macros' messages.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, so every test gets a stable, distinct stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Multiply-shift with rejection keeps the draw unbiased.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

/// Strategy over `T`'s full domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

/// `&str` literals are strategies over a tiny regex subset:
/// concatenations of `[class]` / literal chars, each optionally
/// quantified with `{n}` or `{m,n}` — e.g. `"[a-z/._0-9]{0,64}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal char.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"(){}*+?|^$.".contains(c),
                "unsupported regex construct {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        // Optional {n} / {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

/// One branch choice among boxed strategies (see `prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define deterministic random tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..100, ys in proptest::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        #[test]
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
    )* ) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_vecs(
            x in 3u64..10,
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in "[a-c]{1,2}",
            (a, b) in (0.0f64..1.0, -5i32..5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() <= 2);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (1u16..3).prop_map(|x| x as u64),
            (10u16..12).prop_map(|x| x as u64),
        ]) {
            prop_assert!(matches!(v, 1 | 2 | 10 | 11), "v = {}", v);
        }
    }
}
