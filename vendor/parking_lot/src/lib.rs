//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of `parking_lot` it actually uses: a non-poisoning
//! [`Mutex`] (and [`RwLock`] for good measure) layered over `std::sync`.
//! Lock poisoning is ignored — matching `parking_lot` semantics, a
//! panicked holder does not poison the lock for later users.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutual-exclusion lock.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A condition variable with the `parking_lot` API shape: [`Condvar::wait`]
/// takes the guard by `&mut` and reacquires the lock in place instead of
/// consuming and returning the guard as `std::sync::Condvar` does.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wake one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically release the lock and block until notified, reacquiring
    /// the lock (and ignoring poisoning) before returning. Spurious
    /// wakeups are possible, as with any condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the guard is moved out, consumed by the std wait, and
        // the reacquired guard is written back before control returns to
        // the caller; `std::sync::Condvar::wait` does not unwind (the
        // poisoned re-lock is unwrapped into the live guard below).
        unsafe {
            let g = std::ptr::read(guard);
            let g = match self.0.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::ptr::write(guard, g);
        }
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
