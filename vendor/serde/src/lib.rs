//! Offline stand-in for the `serde` crate (serialize side only).
//!
//! Instead of serde's visitor-based zero-copy design, this stand-in
//! lowers every value to an owned [`Content`] tree which downstream
//! formats (the vendored `serde_json`) render. That keeps the API the
//! workspace relies on — `#[derive(Serialize)]`, `#[serde(skip)]`,
//! `#[serde(serialize_with = "...")]`, and hand-written
//! `fn serialize<S: Serializer>` helpers — while fitting in a few
//! hundred dependency-free lines.

use std::collections::{BTreeMap, HashMap};
use std::convert::Infallible;

pub use serde_derive::Serialize;

/// An owned, format-independent serialization tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / a skipped optional.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key → value map (struct fields, map entries).
    Map(Vec<(String, Content)>),
}

/// A value that can lower itself to a [`Content`] tree.
pub trait Serialize {
    /// Lower `self` to a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Receiver side of serialization, mirroring `serde::Serializer` for the
/// methods this workspace's hand-written helpers call.
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error;

    /// Accept a fully built [`Content`] tree.
    fn collect_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.collect_content(Content::Str(v.to_string()))
    }

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.collect_content(Content::Bool(v))
    }

    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.collect_content(Content::I64(v))
    }

    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.collect_content(Content::U64(v))
    }

    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.collect_content(Content::F64(v))
    }
}

/// The [`Serializer`] the derive macro feeds `serialize_with` functions:
/// it simply hands back the [`Content`] it is given, and cannot fail.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Infallible;

    fn collect_content(self, content: Content) -> Result<Content, Infallible> {
        Ok(content)
    }
}

macro_rules! impl_serialize_prim {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::$variant(*self as $as)
            }
        }
    )*};
}

impl_serialize_prim! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

/// Render a map key. JSON keys must be strings, so string-ish content
/// passes through, scalars are stringified, and string sequences are
/// joined with `/` (the workspace's call-path keys); anything else is a
/// caller bug.
fn key_string(c: Content) -> String {
    match c {
        Content::Str(s) => s,
        Content::Bool(b) => b.to_string(),
        Content::I64(i) => i.to_string(),
        Content::U64(u) => u.to_string(),
        Content::F64(f) => f.to_string(),
        Content::Seq(parts) => parts
            .into_iter()
            .map(key_string)
            .collect::<Vec<_>>()
            .join("/"),
        other => panic!("cannot use {other:?} as a map key"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_string(k.to_content()), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_content()), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(42u32.to_content(), Content::U64(42));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!(1.5f64.to_content(), Content::F64(1.5));
        assert_eq!("hi".to_content(), Content::Str("hi".into()));
        assert_eq!(None::<u8>.to_content(), Content::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![vec![1u8], vec![2, 3]];
        assert_eq!(
            v.to_content(),
            Content::Seq(vec![
                Content::Seq(vec![Content::U64(1)]),
                Content::Seq(vec![Content::U64(2), Content::U64(3)]),
            ])
        );
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(vec!["a".to_string(), "b".to_string()], 1u8);
        assert_eq!(
            m.to_content(),
            Content::Map(vec![("a/b".to_string(), Content::U64(1))])
        );
    }

    #[test]
    fn content_serializer_is_identity() {
        let c: Content = ContentSerializer.serialize_str("x").unwrap();
        assert_eq!(c, Content::Str("x".into()));
    }
}
