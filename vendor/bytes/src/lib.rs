//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (immutable, cheaply cloneable view over shared
//! storage), [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`]
//! cursor traits — covering the subset of the real crate's API that this
//! workspace uses. Clones and `slice`/`split_to` are O(1): they share one
//! `Arc` allocation and adjust an offset/length window.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(v) => v,
        }
    }
}

/// An immutable, reference-counted view of a byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            off: 0,
            len: 0,
        }
    }

    /// Wrap a `'static` slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(s),
            off: 0,
            len: s.len(),
        }
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bounds(&self, range: impl RangeBounds<usize>) -> (usize, usize) {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        (start, end)
    }

    /// O(1) sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let (start, end) = self.bounds(range);
        Bytes {
            repr: self.repr.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.off += at;
        self.len -= at;
        head
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.repr.as_slice()[self.off..self.off + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer used to build [`Bytes`] values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub const fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, tail),
        }
    }

    /// Grow or shrink to `new_len`, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

macro_rules! buf_get {
    ($($name:ident -> $t:ty, $conv:ident;)*) => {$(
        /// Read the next value, advancing the cursor.
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            let chunk = self.chunk();
            assert!(chunk.len() >= N, "buffer underflow reading {}", stringify!($name));
            raw.copy_from_slice(&chunk[..N]);
            self.advance(N);
            <$t>::$conv(raw)
        }
    )*};
}

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    buf_get! {
        get_u8 -> u8, from_be_bytes;
        get_u16 -> u16, from_be_bytes;
        get_u32 -> u32, from_be_bytes;
        get_u64 -> u64, from_be_bytes;
        get_u16_le -> u16, from_le_bytes;
        get_u32_le -> u32, from_le_bytes;
        get_u64_le -> u64, from_le_bytes;
        get_f32_le -> f32, from_le_bytes;
        get_f64_le -> f64, from_le_bytes;
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance past end of Bytes");
        self.off += cnt;
        self.len -= cnt;
    }
}

macro_rules! buf_put {
    ($($name:ident($t:ty), $conv:ident;)*) => {$(
        /// Append one value.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.$conv());
        }
    )*};
}

/// Append cursor over a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put! {
        put_u16(u16), to_be_bytes;
        put_u32(u32), to_be_bytes;
        put_u64(u64), to_be_bytes;
        put_u16_le(u16), to_le_bytes;
        put_u32_le(u32), to_le_bytes;
        put_u64_le(u64), to_le_bytes;
        put_f32_le(f32), to_le_bytes;
        put_f64_le(f64), to_le_bytes;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_codec() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32_le(0xAABBCCDD);
        b.put_u64(42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let mut raw = b.freeze();
        assert_eq!(raw.get_u8(), 7);
        assert_eq!(raw.get_u16(), 0x0102);
        assert_eq!(raw.get_u32_le(), 0xAABBCCDD);
        assert_eq!(raw.get_u64(), 42);
        assert_eq!(raw.get_f64_le(), 1.5);
        assert_eq!(raw.split_to(3), Bytes::from_static(b"xyz"));
        assert!(raw.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let whole = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = whole.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        assert_eq!(&whole.slice(..3)[..], &[0, 1, 2]);
        assert_eq!(&whole.slice(6..)[..], &[6, 7]);

        let mut rest = whole.clone();
        let head = rest.split_to(5);
        assert_eq!(&head[..], &[0, 1, 2, 3, 4]);
        assert_eq!(&rest[..], &[5, 6, 7]);
    }

    #[test]
    fn equality_and_to_vec() {
        let a = Bytes::from_static(b"payload");
        let b = Bytes::copy_from_slice(b"payload");
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), b"payload".to_vec());
    }
}
