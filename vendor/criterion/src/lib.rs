//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!` harness surface
//! this workspace's benches use, backed by a deliberately simple
//! measurement loop: a short warm-up, then timed batches until either the
//! sample budget or a wall-clock budget is exhausted, reporting mean and
//! spread per iteration (plus throughput when configured). No statistics
//! engine, no HTML reports, no state directory — just numbers on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budgets (per benchmark).
const WARMUP_BUDGET: Duration = Duration::from_millis(200);
const MEASURE_BUDGET: Duration = Duration::from_millis(1000);

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 100, None, f);
        self
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Set the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Drives the timing loop inside a benchmark closure.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

enum Mode {
    /// Run the routine a few times to warm caches; don't record.
    Warmup,
    /// Record one sample per `iter` call.
    Measure { target: usize },
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Warmup => {
                let start = Instant::now();
                loop {
                    std::hint::black_box(routine());
                    if start.elapsed() >= WARMUP_BUDGET {
                        break;
                    }
                }
            }
            Mode::Measure { target } => {
                let budget_start = Instant::now();
                for _ in 0..target {
                    let t0 = Instant::now();
                    std::hint::black_box(routine());
                    self.samples.push(t0.elapsed());
                    if budget_start.elapsed() >= MEASURE_BUDGET {
                        break;
                    }
                }
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut warm = Bencher {
        mode: Mode::Warmup,
        samples: Vec::new(),
    };
    f(&mut warm);

    let mut bench = Bencher {
        mode: Mode::Measure {
            target: sample_size,
        },
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bench);

    if bench.samples.is_empty() {
        println!("  {name}: no samples collected");
        return;
    }
    let n = bench.samples.len();
    let total: Duration = bench.samples.iter().sum();
    let mean = total.as_secs_f64() / n as f64;
    let min = bench.samples.iter().min().unwrap().as_secs_f64();
    let max = bench.samples.iter().max().unwrap().as_secs_f64();
    let mut line = format!(
        "  {name}: [{} {} {}] ({n} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gibs = bytes as f64 / mean / (1024.0 * 1024.0 * 1024.0);
            line.push_str(&format!(" {gibs:.3} GiB/s"));
        }
        Some(Throughput::Elements(elems)) => {
            let meps = elems as f64 / mean / 1e6;
            line.push_str(&format!(" {meps:.3} Melem/s"));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(1024));
        let mut count = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &k| {
            b.iter(|| k.wrapping_mul(7))
        });
        g.finish();
        assert!(count > 0);
    }
}
