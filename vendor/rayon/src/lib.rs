//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the `par_iter`/`into_par_iter` surface this workspace uses, but
//! executes everything sequentially on the calling thread. That keeps the
//! build dependency-free and — as a bonus — makes "parallel" sections fully
//! deterministic. The combinator set mirrors rayon's names and signatures
//! (`reduce` takes an identity closure, unlike `Iterator::reduce`), so code
//! written against this stub compiles unchanged against real rayon.

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Number of worker threads rayon would size its pool to: the machine's
/// available parallelism (1 when it cannot be determined).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scope for spawning borrowing tasks, mirroring `rayon::Scope`.
///
/// Unlike the sequential iterator combinators above, `scope` provides
/// *real* parallelism: each `spawn` runs on its own OS thread (backed by
/// [`std::thread::scope`], so tasks may borrow from the enclosing
/// frame). This workspace uses it for coarse-grained work — a handful of
/// long-lived workers draining a shared queue — where per-spawn thread
/// cost is negligible and a work-stealing pool would be overkill.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task into the scope. The task may borrow anything that
    /// outlives the scope and may itself spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Create a scope whose spawned tasks all complete before `scope`
/// returns, mirroring `rayon::scope`. Tasks run on real OS threads.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// A "parallel" iterator: a thin wrapper over a sequential [`Iterator`]
/// exposing rayon-shaped combinators.
pub struct ParIter<I>(I);

/// `ParIter` is itself iterable, so parallel iterators compose (e.g. as
/// the argument of [`ParIter::zip`]) through the blanket
/// [`IntoParallelIterator`] impl. Inherent combinators above shadow the
/// `Iterator` ones where signatures differ (notably `reduce`).
impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
}

impl<I: Iterator> ParIter<I> {
    /// Transform each item.
    pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep items satisfying `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(pred))
    }

    /// Pair items with another parallel iterator.
    pub fn zip<J>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>>
    where
        J: IntoParallelIterator,
    {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Pair items with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Does any item satisfy `pred`?
    pub fn any<F: FnMut(I::Item) -> bool>(mut self, pred: F) -> bool {
        self.0.any(pred)
    }

    /// Do all items satisfy `pred`?
    pub fn all<F: FnMut(I::Item) -> bool>(mut self, pred: F) -> bool {
        self.0.all(pred)
    }

    /// Run `f` on each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sum all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collect into a container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Fold all items with `op`, starting from `identity()` — rayon's
    /// reduce signature (identity closure first), not `Iterator::reduce`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

/// Conversion into a [`ParIter`] by value, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Iter = C::IntoIter;
    type Item = C::Item;

    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// Conversion into a borrowing [`ParIter`], mirroring
/// `rayon::iter::IntoParallelRefIterator` (the `par_iter` method).
pub trait IntoParallelRefIterator<'a> {
    /// Underlying sequential iterator type.
    type Iter: Iterator;

    /// Iterate the container by reference.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, (0u32..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_uses_identity() {
        let hist = (0..4usize)
            .into_par_iter()
            .map(|i| vec![i as u64; 3])
            .reduce(
                || vec![0u64; 3],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(hist, vec![6, 6, 6]);
    }

    #[test]
    fn scope_runs_borrowing_tasks_to_completion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..17).collect();
        let cursor = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(v) = items.get(i) else { break };
                    counter.fetch_add(v + 1, Ordering::Relaxed);
                });
            }
        });
        // Every item claimed exactly once: sum of (v+1) for v in 0..17.
        assert_eq!(counter.load(Ordering::Relaxed), (0..17).sum::<usize>() + 17);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn zip_and_any() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [1.0f64, 2.5, 3.0];
        assert!(a.par_iter().zip(b.par_iter()).any(|(x, y)| x != y));
        let s: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).sum();
        assert!((s - 12.5).abs() < 1e-12);
    }
}
