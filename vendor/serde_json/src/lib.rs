//! Offline stand-in for the `serde_json` crate.
//!
//! Provides [`Value`] with the indexing/equality surface the workspace
//! uses, a complete JSON text parser ([`from_str`]), and
//! [`to_string`]/[`to_string_pretty`] over the vendored `serde`'s
//! `Content` tree. Objects preserve insertion order. Non-finite floats
//! print as `null`, matching what lossy JSON consumers expect.

use serde::{Content, Serialize};
use std::fmt;

/// A JSON number: integer representations are kept exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer (only used for negatives).
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A parsed or built JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Mutable member access; inserts `null` under `key` first if
    /// missing. As in real `serde_json`, indexing into a non-object is
    /// a panic.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(entries) = self else {
            panic!("cannot index {self:?} with a string key");
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[pos].1;
        }
        entries.push((key.to_string(), Value::Null));
        &mut entries.last_mut().unwrap().1
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

/// A parse (or, in principle, serialize) error with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
        Content::F64(_) => out.push_str("null"),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => write_block(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_content(out, &items[i], ind)
        }),
        Content::Map(entries) => {
            write_block(out, indent, '{', '}', entries.len(), |out, i, ind| {
                escape_into(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, &entries[i].1, ind)
            })
        }
    }
}

/// Shared array/object writer: compact when `indent` is `None`, otherwise
/// one element per line at `indent + 1` levels of two-space indent.
fn write_block(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        write_item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_index() {
        let v = from_str(r#"{"a": [1, 2.5, "x"], "b": {"c": true}}"#).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][2], "x");
        assert_eq!(v["b"]["c"].as_bool(), Some(true));
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = from_str("{}").unwrap();
        v["label"] = Value::String("fig7".to_string());
        assert_eq!(v["label"], "fig7");
    }

    #[test]
    fn round_trip_pretty() {
        let v =
            from_str(r#"{"s": "he said \"hi\"", "n": -3, "f": 0.25, "e": [], "o": {}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn numbers_preserve_integers() {
        let v = from_str("[18446744073709551615, -9007199254740993, 1e3]").unwrap();
        assert_eq!(v[0].as_u64(), Some(u64::MAX));
        assert_eq!(v[1], Value::Number(Number::I64(-9007199254740993)));
        assert_eq!(v[2].as_f64(), Some(1000.0));
    }
}
