//! Umbrella crate for the DYAD-vs-traditional-I/O reproduction
//! workspace. Hosts the runnable examples and the cross-crate
//! integration tests, and re-exports every member crate.
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

pub use analytics;
pub use cluster;
pub use dyad;
pub use instrument;
pub use kvs;
pub use localfs;
pub use mdflow;
pub use mdsim;
pub use pfs;
pub use simcore;
pub use thicket;
pub use transport;
